(** Point-to-point message network over the simulation engine.

    Models, per message: sender egress serialization (a shared egress pipe of
    configurable bandwidth — this is what saturates first in the paper's
    throughput experiments), propagation delay from the topology, lognormal
    jitter, receiver CPU sequencing (a per-replica processing queue with
    fixed + per-byte costs), probabilistic egress drops, and crash faults.

    The payload type is a parameter so each protocol keeps its own typed
    messages; the declared [size] in bytes is what bandwidth and CPU are
    charged for, and message modules compute it from their wire encodings.

    Invariants:
    - all randomness (jitter, drops, slow epochs) comes from the network's
      own seeded stream, and fault checks (crash, partition) are evaluated
      {e after} the stream draws — injecting or healing a fault never
      perturbs the delays of unaffected messages;
    - per-replica delivery order is the engine's deterministic event order;
      a message is either delivered exactly once or counted in exactly one
      of the drop counters ({!messages_dropped}, {!messages_partitioned});
    - out-of-band control traffic ({!send_oob}/{!broadcast_oob}) draws no
      randomness and mutates no egress/CPU cursor — enabling it leaves the
      data plane's delivery schedule byte-identical. *)

type 'msg t

type send_order =
  | Fixed_order  (** ascending replica id — the naive pattern §7 warns about *)
  | Farthest_first  (** distance-based priority broadcast (§7) *)
  | Random_order

type config = {
  bandwidth_bytes_per_ms : float;  (** egress pipe per replica; e.g. 1 Gbps = 125_000. *)
  jitter_ms : float;  (** lognormal jitter scale added to propagation; 0 disables. *)
  epoch_ms : float;
      (** duration of slow-epoch periods. Real WANs are non-stationary: which
          replicas are "slow" changes on a seconds timescale (the paper
          leans on this in §5.2). Each replica gets an extra egress delay,
          resampled each epoch. 0 disables. *)
  epoch_extra_mean_ms : float;  (** mean of the per-epoch extra delay (exponential). *)
  cpu_fixed_ms : float;  (** receiver cost per message. *)
  cpu_per_byte_ms : float;  (** receiver cost per payload byte. *)
  loopback_ms : float;  (** self-delivery latency. *)
  send_order : send_order;
}

val default_config : config
(** 1 Gbps egress, 2 ms jitter scale (typical WAN), 2 s slow epochs with
    8 ms mean extra delay, 2 µs + 0.4 ns/byte CPU, farthest-first sends. *)

val extra_delay_ms : _ t -> src:int -> time:float -> float
(** The slow-epoch extra delay in force for [src] at [time] (for tests). *)

val create :
  engine:Engine.t ->
  topology:Topology.t ->
  assignment:int array ->
  fault:Fault_schedule.t ->
  config:config ->
  seed:int ->
  unit ->
  'msg t

val n : _ t -> int
val engine : _ t -> Engine.t
val region_of : _ t -> int -> int

val set_handler : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit
(** Install the receive callback for a replica. Messages arriving for a
    replica with no handler are counted and discarded. *)

val set_fault : 'msg t -> Fault_schedule.t -> unit
(** Replace the fault schedule mid-run (used by time-series experiments). *)

val send : 'msg t -> src:int -> dst:int -> size:int -> 'msg -> unit
(** Queue one message. Crashed senders send nothing; messages to crashed
    (at delivery time) replicas vanish; messages crossing an active
    partition are blocked (and counted in {!messages_partitioned}) without
    perturbing the jitter/drop random streams. *)

val broadcast : 'msg t -> src:int -> size:int -> ?include_self:bool -> 'msg -> unit
(** Send to every replica in the configured send order. [include_self]
    (default true) delivers a loopback copy without consuming egress.

    Internally the fan-out is batched: surviving deliveries are grouped by
    destination region, each group driven by one chained engine timer drawn
    from a pooled envelope, so a broadcast keeps [regions] timers pending
    rather than n. Per-destination egress serialization, jitter/drop draws,
    and delivery times are computed eagerly in send order and are exactly
    those of n independent {!send}s. *)

val base_delay_ms : 'msg t -> src:int -> dst:int -> float
(** Propagation-only delay (no jitter/bandwidth), for distance ordering and
    latency probes. *)

val send_oob : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Out-of-band control-plane delivery (checkpoint votes, catch-up sync):
    propagation delay plus a fixed pad, no egress serialization, no jitter
    or drop draws, no receiver CPU queueing — so control traffic cannot
    perturb the data plane's random streams or timing. Crash faults are
    honored at send and delivery time; partitions block (counted in
    {!oob_blocked}). *)

val broadcast_oob : 'msg t -> src:int -> ?include_self:bool -> 'msg -> unit
(** {!send_oob} to every replica in id order ([include_self] default true). *)

(** Counters for reporting. *)

val messages_sent : _ t -> int
val messages_dropped : _ t -> int

val messages_partitioned : _ t -> int
(** Messages blocked by an active partition (distinct from random drops). *)

val bytes_sent : _ t -> float

val oob_sent : _ t -> int
(** Control-plane messages delivered out of band. *)

val oob_blocked : _ t -> int
(** Control-plane messages blocked by an active partition. *)
