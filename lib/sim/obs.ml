(* Observability context threaded through protocol components.

   Bundles the (optional) typed trace ring and the (optional) telemetry
   registry with the identity of the recording component — replica id and
   parallel-DAG instance id — so instrumentation sites are one-liners and
   a fully disabled context costs one branch per site. *)

module Telemetry = Shoalpp_support.Telemetry

type t = {
  replica : int;
  instance : int;
  trace : Trace.t option;
  telemetry : Telemetry.t option;
}

let make ?trace ?telemetry ~replica ~instance () = { replica; instance; trace; telemetry }
let none = { replica = 0; instance = 0; trace = None; telemetry = None }
let with_instance t ~instance = { t with instance }

let event t ~time kind =
  match t.trace with
  | Some tr -> Trace.record_event tr ~time ~replica:t.replica ~instance:t.instance kind
  | None -> ()

let incr ?by t name =
  match t.telemetry with Some reg -> Telemetry.incr_named ?by reg name | None -> ()

let observe t name v =
  match t.telemetry with Some reg -> Telemetry.observe_named reg name v | None -> ()

let set t name v =
  match t.telemetry with Some reg -> Telemetry.set_named reg name v | None -> ()

(* Cached-handle access for hot paths: [None] when telemetry is off. *)
let counter t name = Option.map (fun reg -> Telemetry.counter reg name) t.telemetry
let histogram t name = Option.map (fun reg -> Telemetry.histogram reg name) t.telemetry
let incr_c ?by c = match c with Some c -> Telemetry.incr ?by c | None -> ()
let observe_h h v = match h with Some h -> Telemetry.observe h v | None -> ()
