(** Declarative fault scenarios (§8 "failures" experiments).

    A scenario is a named, size-independent description of the faults a run
    should inject — Byzantine proposers, a timed minority partition with a
    heal, crash-then-recover with WAL replay — parsed from the
    [--scenario name:key=val,...] CLI syntax. Binding to concrete replica
    ids happens only at {!schedule}/{!byzantine_for} time, against the
    actual cluster size [n], so one scenario string sweeps every system and
    committee size in [bench/main.ml]. {!schedule} materializes a scenario
    into a concrete {!Fault_schedule.t} timeline — the network and the
    cluster harness both consume that single materialization, never the
    scenario itself, so their fault views cannot disagree.

    Invariants:
    - parsing and materialization are pure: the same spec string and [n]
      always yield the same {!Fault_schedule.t} schedule and role assignment, keeping
      runs a deterministic function of the seed;
    - faulty roles are assigned from the highest replica ids downward
      (matching the [--crashes] convention), and every preset keeps the
      faulty count within [f = (n-1)/3];
    - {!Byzantine} specs never appear in the materialized {!Fault_schedule.t} — they
      are behavioural and injected at the replica layer via
      {!byzantine_for}. *)

(** How a Byzantine replica misbehaves:
    - [Equivocate] — send conflicting proposals for the same round to
      different halves of the committee;
    - [Silent_anchor] — withhold own proposals entirely (the "faulty
      anchor" of the reputation experiments);
    - [Delay_votes ms] — delay outgoing votes by [ms] milliseconds. *)
type byz_kind = Equivocate | Silent_anchor | Delay_votes of float

type spec =
  | Crash of { count : int; at : float; recover_at : float option }
  | Partition of { minority : int; from_time : float; until_time : float }
      (** [minority = 0] means the default [f = (n-1)/3]. *)
  | Byzantine of { count : int; kind : byz_kind; from_time : float; until_time : float }
  | Drop of { count : int; rate : float; from_time : float; until_time : float }

type t = { name : string; specs : spec list }

val none : t
(** The empty scenario: no injected faults beyond the run's base schedule. *)

val byzantine :
  ?count:int -> ?kind:byz_kind -> ?from_time:float -> ?until_time:float -> unit -> t
(** Preset: [count] (default 1) Byzantine replicas for the whole run,
    equivocating unless [kind] says otherwise. *)

val partition : ?minority:int -> ?from_time:float -> ?duration:float -> unit -> t
(** Preset: cut a minority of [minority] replicas (default [f]) off from
    [from_time] (default 8 s) for [duration] (default 20 s), then heal. *)

val crash_recover : ?count:int -> ?at:float -> ?recover_at:float -> unit -> t
(** Preset: crash [count] replicas (default 1) at [at] (default 5 s) and
    recover them — with WAL replay — at [recover_at] (default 15 s). *)

val parse : string -> (t, string) result
(** Parse [--scenario] syntax: a preset name optionally followed by
    [:key=val,...] overrides. Recognised names: [none], [byzantine]
    (keys [count], [kind=equivocate|silent|delay], [delay], [from],
    [until]), [partition] (keys [minority], [from], [dur]),
    [crash-recover] (keys [count], [at], [recover]). *)

val pp : Format.formatter -> t -> unit

val name : t -> string

val schedule : t -> n:int -> base:Fault_schedule.t -> Fault_schedule.t
(** Materialize the scenario's crashes, recoveries, partitions and drops on
    top of [base] for a cluster of [n] replicas. Byzantine specs are
    excluded (see {!byzantine_for}). *)

val byzantine_for : t -> n:int -> replica:int -> float -> byz_kind option
(** [byzantine_for t ~n ~replica time] is the misbehaviour [replica] should
    exhibit at [time], or [None] if it is honest (then or always). The
    partial application per replica is cheap and pure. *)

val has_byzantine : t -> bool

val crash_recoveries : t -> n:int -> (int * float * float) list
(** [(replica, crash_at, recover_at)] for every crash spec with a recovery —
    the runtime schedules a WAL-replay restart for each. *)

val timed_crashes : t -> n:int -> (int * float) list
(** [(replica, crash_at)] for every scenario crash that needs a runtime
    crash event (mid-run crashes; t=0 crashes without recovery are handled
    by the cluster's start-up path). *)

val has_recovery : t -> bool
(** True iff some crash spec recovers — the runtime then retains WAL
    payloads for replay. *)

val partition_windows : t -> n:int -> (float * float * int) list
(** [(from_time, until_time, minority_size)] per partition spec, for
    scheduling open/heal trace events. *)
