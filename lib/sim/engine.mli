(** Discrete-event simulation engine.

    Simulated time is a [float] in milliseconds starting at 0. Events fire in
    (time, insertion-order) order, so two events scheduled for the same
    instant run in the order they were scheduled — this makes whole runs
    deterministic given deterministic handlers.

    Invariants:
    - the clock never moves backwards: an event scheduled in the past fires
      at the current time, and [run ~until] leaves the clock exactly at
      [until] even when the queue drained earlier;
    - scheduling and cancelling inside a handler is safe; a cancelled or
      already-fired timer never fires (cancel is an idempotent no-op). *)

type t

type timer
(** Handle for a scheduled event, used to cancel pending timers. *)

val create : unit -> t

val now : t -> float
(** Current simulated time in milliseconds. *)

val schedule : t -> after:float -> (unit -> unit) -> timer
(** [schedule t ~after f] runs [f] at [now t +. max after 0.]. *)

val schedule_at : t -> at:float -> (unit -> unit) -> timer
(** Absolute-time variant; times in the past fire "now". *)

val cancel : timer -> unit
(** Cancelling an already-fired or cancelled timer is a no-op. *)

val is_pending : timer -> bool

val step : t -> bool
(** Fire the next event. Returns [false] when the queue is empty. *)

type stop_reason =
  | Horizon_reached  (** no live event remains at or before [until]; the clock is at [until] *)
  | Queue_drained  (** no [until] given and the queue is empty *)
  | Budget_exhausted  (** [max_events] ran out with due events still pending; the clock stays at the last fired event *)

val run_status : ?until:float -> ?max_events:int -> t -> stop_reason
(** Drain the queue. [until] stops once the clock would pass that instant
    (the clock is left at [until] whenever the horizon is reached, including
    when the budget expires exactly as the queue drains); [max_events]
    bounds fired events as a runaway backstop — cancelled timers cost no
    budget. The result distinguishes "horizon reached" from "budget
    exhausted". *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** {!run_status} with the result ignored. *)

val pending_events : t -> int
val events_fired : t -> int
