(* Declarative fault scenarios.

   A scenario is a named list of abstract fault specs ("crash 2 replicas at
   t=5s and recover them at t=15s", "partition a minority for 20s",
   "1 equivocating proposer") that is only bound to concrete replica ids
   when materialized against a cluster size n. Specs assign roles from the
   highest replica ids downward, matching the --crashes convention, so
   scenario runs compare directly against the existing crash experiments. *)

type byz_kind = Equivocate | Silent_anchor | Delay_votes of float

type spec =
  | Crash of { count : int; at : float; recover_at : float option }
  | Partition of { minority : int; from_time : float; until_time : float }
  | Byzantine of { count : int; kind : byz_kind; from_time : float; until_time : float }
  | Drop of { count : int; rate : float; from_time : float; until_time : float }

type t = { name : string; specs : spec list }

let none = { name = "none"; specs = [] }

let byzantine ?(count = 1) ?(kind = Equivocate) ?(from_time = 0.0) ?(until_time = infinity) () =
  { name = "byzantine"; specs = [ Byzantine { count; kind; from_time; until_time } ] }

let partition ?(minority = 0) ?(from_time = 8_000.0) ?(duration = 20_000.0) () =
  {
    name = "partition";
    specs = [ Partition { minority; from_time; until_time = from_time +. duration } ];
  }

let crash_recover ?(count = 1) ?(at = 5_000.0) ?(recover_at = 15_000.0) () =
  { name = "crash-recover"; specs = [ Crash { count; at; recover_at = Some recover_at } ] }

(* ------------------------------------------------------------------ *)
(* Parsing: "name" or "name:key=val,key=val". *)

let byz_kind_of_string = function
  | "equivocate" -> Ok Equivocate
  | "silent" -> Ok Silent_anchor
  | "delay" -> Ok (Delay_votes 400.0)
  | s -> Error (Printf.sprintf "unknown byzantine kind %S (equivocate|silent|delay)" s)

let byz_kind_name = function
  | Equivocate -> "equivocate"
  | Silent_anchor -> "silent"
  | Delay_votes _ -> "delay"

let parse_kv s =
  match String.index_opt s '=' with
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> None

let parse spec_string =
  let name, kvs =
    match String.index_opt spec_string ':' with
    | None -> (spec_string, [])
    | Some i ->
      let rest = String.sub spec_string (i + 1) (String.length spec_string - i - 1) in
      ( String.sub spec_string 0 i,
        String.split_on_char ',' rest |> List.filter (fun s -> s <> "") )
  in
  let kvs = List.filter_map parse_kv kvs in
  let float_kv key default =
    match List.assoc_opt key kvs with
    | None -> Ok default
    | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "%s: expected a number, got %S" key v))
  in
  let int_kv key default =
    match List.assoc_opt key kvs with
    | None -> Ok default
    | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "%s: expected an integer, got %S" key v))
  in
  let ( let* ) = Result.bind in
  match String.lowercase_ascii name with
  | "none" -> Ok none
  | "byzantine" ->
    let* count = int_kv "count" 1 in
    let* from_time = float_kv "from" 0.0 in
    let* until_time = float_kv "until" infinity in
    let* kind =
      match List.assoc_opt "kind" kvs with
      | None -> Ok Equivocate
      | Some k -> byz_kind_of_string (String.lowercase_ascii k)
    in
    let* kind =
      match kind with
      | Delay_votes _ ->
        let* d = float_kv "delay" 400.0 in
        Ok (Delay_votes d)
      | k -> Ok k
    in
    Ok (byzantine ~count ~kind ~from_time ~until_time ())
  | "partition" ->
    let* minority = int_kv "minority" 0 in
    let* from_time = float_kv "from" 8_000.0 in
    let* duration = float_kv "dur" 20_000.0 in
    Ok (partition ~minority ~from_time ~duration ())
  | "crash-recover" | "crash_recover" ->
    let* count = int_kv "count" 1 in
    let* at = float_kv "at" 5_000.0 in
    let* recover_at = float_kv "recover" 15_000.0 in
    Ok (crash_recover ~count ~at ~recover_at ())
  | other ->
    Error (Printf.sprintf "unknown scenario %S (none|byzantine|partition|crash-recover)" other)

let pp_spec fmt = function
  | Crash { count; at; recover_at } -> (
    match recover_at with
    | None -> Format.fprintf fmt "crash %d at %gms" count at
    | Some r -> Format.fprintf fmt "crash %d at %gms, recover at %gms" count at r)
  | Partition { minority; from_time; until_time } ->
    Format.fprintf fmt "partition minority=%d [%gms, %gms)" minority from_time until_time
  | Byzantine { count; kind; from_time; until_time } ->
    Format.fprintf fmt "byzantine %d (%s) [%gms, %gms)" count (byz_kind_name kind) from_time
      until_time
  | Drop { count; rate; from_time; until_time } ->
    Format.fprintf fmt "drop %d rate=%g [%gms, %gms)" count rate from_time until_time

let pp fmt t =
  if t.specs = [] then Format.pp_print_string fmt t.name
  else
    Format.fprintf fmt "%s (%a)" t.name
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ") pp_spec)
      t.specs

let name t = t.name

(* ------------------------------------------------------------------ *)
(* Materialization against a concrete cluster size. Faulty roles take the
   highest replica ids; with n = 3f+1 and default counts, every preset
   stays within the f-tolerance of the protocols. *)

let top_ids ~n count = List.init (min count n) (fun i -> n - 1 - i)

let minority_size ~n minority = if minority > 0 then min minority (n - 1) else (n - 1) / 3

let schedule t ~n ~base =
  List.fold_left
    (fun fault spec ->
      match spec with
      | Crash { count; at; recover_at } ->
        let replicas = top_ids ~n count in
        let fault = Fault_schedule.crash_many fault ~replicas ~at in
        (match recover_at with
        | None -> fault
        | Some r -> List.fold_left (fun f replica -> Fault_schedule.recover f ~replica ~at:r) fault replicas)
      | Partition { minority; from_time; until_time } ->
        let m = minority_size ~n minority in
        let cut = top_ids ~n m in
        let rest = List.filter (fun i -> not (List.mem i cut)) (List.init n Fun.id) in
        Fault_schedule.partition fault ~groups:[ rest; cut ] ~from_time ~until_time
      | Byzantine _ -> fault (* behavioural; injected at the replica layer *)
      | Drop { count; rate; from_time; until_time } ->
        Fault_schedule.drop_egress fault ~replicas:(List.init (min count n) Fun.id) ~rate ~from_time
          ~until_time ())
    base t.specs

let byzantine_for t ~n ~replica =
  let specs =
    List.filter_map
      (function
        | Byzantine { count; kind; from_time; until_time }
          when List.mem replica (top_ids ~n count) ->
          Some (kind, from_time, until_time)
        | _ -> None)
      t.specs
  in
  if specs = [] then fun _ -> None
  else
    fun time ->
      List.find_map
        (fun (kind, from_time, until_time) ->
          if time >= from_time && time < until_time then Some kind else None)
        specs

let has_byzantine t = List.exists (function Byzantine _ -> true | _ -> false) t.specs

let crash_recoveries t ~n =
  List.concat_map
    (function
      | Crash { count; at; recover_at = Some r } ->
        List.map (fun replica -> (replica, at, r)) (top_ids ~n count)
      | _ -> [])
    t.specs

let timed_crashes t ~n =
  List.concat_map
    (function
      | Crash { count; at; recover_at = None } when at > 0.0 ->
        List.map (fun replica -> (replica, at)) (top_ids ~n count)
      | Crash { count; at; recover_at = Some _ } ->
        List.map (fun replica -> (replica, at)) (top_ids ~n count)
      | _ -> [])
    t.specs

let has_recovery t =
  List.exists (function Crash { recover_at = Some _; _ } -> true | _ -> false) t.specs

let partition_windows t ~n =
  List.filter_map
    (function
      | Partition { minority; from_time; until_time } ->
        let m = minority_size ~n minority in
        Some (from_time, until_time, m)
      | _ -> None)
    t.specs
