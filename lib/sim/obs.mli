(** Observability context threaded through protocol components.

    Bundles an optional typed {!Trace.t} and an optional
    {!Shoalpp_support.Telemetry.t} with the identity of the recording
    component (replica id, parallel-DAG instance id). Components take an
    [?obs] argument defaulting to {!none}; a disabled context costs one
    branch per instrumentation site.

    Invariants:
    - recording through a disabled context ({!none}, or a missing trace /
      telemetry half) is a silent no-op — protocol behaviour is identical
      with observability on or off;
    - every record carries the context's replica and instance ids, so
      events from k parallel DAG lanes stay attributable. *)

module Telemetry = Shoalpp_support.Telemetry

type t = {
  replica : int;
  instance : int;
  trace : Trace.t option;
  telemetry : Telemetry.t option;
}

val make : ?trace:Trace.t -> ?telemetry:Telemetry.t -> replica:int -> instance:int -> unit -> t
val none : t
val with_instance : t -> instance:int -> t

val event : t -> time:float -> Trace.kind -> unit
val incr : ?by:int -> t -> string -> unit
val observe : t -> string -> float -> unit
val set : t -> string -> float -> unit

(** Cached-handle access for hot paths ([None] when telemetry is off). *)

val counter : t -> string -> Telemetry.counter option
val histogram : t -> string -> Telemetry.Histogram.t option
val incr_c : ?by:int -> Telemetry.counter option -> unit
val observe_h : Telemetry.Histogram.t option -> float -> unit
