module Heap = Shoalpp_support.Heap

type timer = { at : float; seq : int; mutable action : (unit -> unit) option }

type t = {
  queue : timer Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
}

let compare_timer a b =
  let c = compare a.at b.at in
  if c <> 0 then c else compare a.seq b.seq

let create () = { queue = Heap.create ~cmp:compare_timer; clock = 0.0; next_seq = 0; fired = 0 }

let now t = t.clock

let schedule_at t ~at f =
  let at = if at < t.clock then t.clock else at in
  let timer = { at; seq = t.next_seq; action = Some f } in
  t.next_seq <- t.next_seq + 1;
  Heap.add t.queue timer;
  timer

let schedule t ~after f = schedule_at t ~at:(t.clock +. Float.max after 0.0) f

let cancel timer = timer.action <- None
let is_pending timer = Option.is_some timer.action

let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some { action = None; _ } -> step t (* cancelled; skip *)
  | Some { at; action = Some f; _ } ->
    t.clock <- at;
    t.fired <- t.fired + 1;
    f ();
    true

type stop_reason = Horizon_reached | Queue_drained | Budget_exhausted

(* Pop cancelled timers off the top of the queue so [peek] reflects the next
   event that will actually fire. Without this, a cancelled timer sitting
   below the horizon could let [run ~until] step past it into an event
   beyond the horizon. Dropping dead timers costs no budget (they are not
   events; [step] never counted them as fired either). *)
let rec drop_cancelled t =
  match Heap.peek t.queue with
  | Some { action = None; _ } ->
    ignore (Heap.pop t.queue);
    drop_cancelled t
  | _ -> ()

let run_status ?until ?(max_events = max_int) t =
  let budget = ref max_events in
  (* The next live event due at or before the horizon, if any. *)
  let due () =
    drop_cancelled t;
    match Heap.peek t.queue with
    | None -> None
    | Some next -> (
      match until with Some horizon when next.at > horizon -> None | _ -> Some next)
  in
  while !budget > 0 && Option.is_some (due ()) do
    decr budget;
    ignore (step t)
  done;
  (* Decide on the queue's state, not on leftover budget: a run whose budget
     expires exactly as the queue drains has still reached the horizon. *)
  match due () with
  | Some _ -> Budget_exhausted
  | None -> (
    match until with
    | Some horizon ->
      if t.clock < horizon then t.clock <- horizon;
      Horizon_reached
    | None -> Queue_drained)

let run ?until ?max_events t = ignore (run_status ?until ?max_events t)

let pending_events t = Heap.length t.queue
let events_fired t = t.fired
