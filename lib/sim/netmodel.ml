module Rng = Shoalpp_support.Rng

type send_order = Fixed_order | Farthest_first | Random_order

type config = {
  bandwidth_bytes_per_ms : float;
  jitter_ms : float;
  epoch_ms : float;
  epoch_extra_mean_ms : float;
  cpu_fixed_ms : float;
  cpu_per_byte_ms : float;
  loopback_ms : float;
  send_order : send_order;
}

let default_config =
  {
    bandwidth_bytes_per_ms = 125_000.0;
    jitter_ms = 2.0;
    epoch_ms = 2_000.0;
    epoch_extra_mean_ms = 8.0;
    cpu_fixed_ms = 0.002;
    cpu_per_byte_ms = 0.0000004;
    loopback_ms = 0.01;
    send_order = Farthest_first;
  }

(* A broadcast's deliveries to one destination region, sorted by delivery
   time. Exactly one engine timer is live per envelope: it fires the head
   delivery, then reschedules itself for the next — so a fan-out to n
   replicas keeps [regions] timers in the queue rather than n, and the
   per-delivery closure is allocated once per envelope (pooled), not once
   per message. Delivery times are computed eagerly at broadcast time, so
   batching changes neither the schedule nor any random draw. *)
type 'msg envelope = {
  mutable env_src : int;
  mutable env_msg : 'msg option; (* [None] while pooled, releasing the payload *)
  env_dsts : int array;
  env_times : float array;
  mutable env_count : int;
  mutable env_index : int;
  mutable env_fire : unit -> unit; (* fixed closure over this envelope *)
}

type 'msg t = {
  engine : Engine.t;
  topology : Topology.t;
  assignment : int array;
  mutable fault : Fault_schedule.t;
  config : config;
  n : int;
  nregions : int;
  egress_free_at : float array;
  cpu_free_at : float array;
  rngs : Rng.t array;
  handlers : (src:int -> 'msg -> unit) option array;
  (* Precomputed broadcast orders per sender: farthest first. *)
  far_order : int array array;
  seed : int;
  (* Memoized slow-epoch extra delay: (epoch index, value) per replica. *)
  epoch_cache : (int * float) array;
  (* Envelope free-list plus per-region scratch for the broadcast in
     progress (broadcast runs synchronously, so one scratch array is safe). *)
  mutable env_pool : 'msg envelope list;
  group_env : 'msg envelope option array; (* by region *)
  mutable sent : int;
  mutable dropped : int;
  mutable partitioned : int;
  mutable bytes : float;
  mutable oob_sent : int;
  mutable oob_blocked : int;
}

let base_delay t ~src ~dst =
  if src = dst then t.config.loopback_ms
  else Topology.one_way_ms t.topology t.assignment.(src) t.assignment.(dst)

let create ~engine ~topology ~assignment ~fault ~config ~seed () =
  let n = Array.length assignment in
  let master = Rng.create seed in
  let rngs = Array.init n (fun _ -> Rng.split master) in
  let far_order =
    Array.init n (fun src ->
        let others = Array.init n (fun i -> i) in
        Array.sort
          (fun a b ->
            let da = Topology.one_way_ms topology assignment.(src) assignment.(a) in
            let db = Topology.one_way_ms topology assignment.(src) assignment.(b) in
            (* Farthest first; ties by id for determinism. *)
            let c = compare db da in
            if c <> 0 then c else compare a b)
          others;
        others)
  in
  let nregions = 1 + Array.fold_left (fun acc r -> if r > acc then r else acc) 0 assignment in
  {
    engine;
    topology;
    assignment;
    fault;
    config;
    n;
    nregions;
    egress_free_at = Array.make n 0.0;
    cpu_free_at = Array.make n 0.0;
    rngs;
    handlers = Array.make n None;
    far_order;
    seed;
    epoch_cache = Array.make n (-1, 0.0);
    env_pool = [];
    group_env = Array.make nregions None;
    sent = 0;
    dropped = 0;
    partitioned = 0;
    bytes = 0.0;
    oob_sent = 0;
    oob_blocked = 0;
  }

(* Deterministic non-stationary slowness: replica [src]'s extra egress delay
   is resampled from an exponential each epoch, derived from (seed, src,
   epoch) so it is independent of message traffic. *)
let extra_delay_ms t ~src ~time =
  if t.config.epoch_ms <= 0.0 || t.config.epoch_extra_mean_ms <= 0.0 then 0.0
  else begin
    let epoch = int_of_float (time /. t.config.epoch_ms) in
    let cached_epoch, cached = t.epoch_cache.(src) in
    if cached_epoch = epoch then cached
    else begin
      let rng = Rng.create ((t.seed * 1_000_003) + (src * 7919) + epoch) in
      let v = Rng.exponential rng t.config.epoch_extra_mean_ms in
      t.epoch_cache.(src) <- (epoch, v);
      v
    end
  end

let n t = t.n
let engine t = t.engine
let region_of t i = t.assignment.(i)
let set_handler t i f = t.handlers.(i) <- Some f
let set_fault t fault = t.fault <- fault
let base_delay_ms t ~src ~dst = base_delay t ~src ~dst

let deliver t ~src ~dst ~size ~at msg =
  let cb () =
    if not (Fault_schedule.is_crashed t.fault ~replica:dst ~time:(Engine.now t.engine)) then begin
      match t.handlers.(dst) with
      | Some handler -> handler ~src msg
      | None -> ()
    end
  in
  (* Receiver CPU sequencing: processing begins when the core is free. *)
  let cost = t.config.cpu_fixed_ms +. (float_of_int size *. t.config.cpu_per_byte_ms) in
  let start = Float.max at t.cpu_free_at.(dst) in
  let done_at = start +. cost in
  t.cpu_free_at.(dst) <- done_at;
  ignore (Engine.schedule_at t.engine ~at:done_at cb)

let send t ~src ~dst ~size msg =
  let now = Engine.now t.engine in
  if Fault_schedule.is_crashed t.fault ~replica:src ~time:now then ()
  else if src = dst then begin
    t.sent <- t.sent + 1;
    deliver t ~src ~dst ~size ~at:(now +. t.config.loopback_ms) msg
  end
  else begin
    t.sent <- t.sent + 1;
    t.bytes <- t.bytes +. float_of_int size;
    let ser = float_of_int size /. t.config.bandwidth_bytes_per_ms in
    let out_at = Float.max now t.egress_free_at.(src) +. ser in
    t.egress_free_at.(src) <- out_at;
    let rng = t.rngs.(src) in
    let drop_rate = Fault_schedule.egress_drop_rate t.fault ~src ~time:out_at in
    (* Sample jitter unconditionally so drop injection does not perturb the
       random stream of surviving messages. *)
    let jitter =
      if t.config.jitter_ms <= 0.0 then 0.0
      else Rng.lognormal rng ~mu:(log t.config.jitter_ms) ~sigma:0.5
    in
    let dropped = drop_rate > 0.0 && Rng.bernoulli rng drop_rate in
    (* Partition evaluation is pure (no RNG), checked after jitter/drop
       sampling so an active partition leaves surviving traffic's random
       stream untouched. The message is charged for egress — the sender's
       NIC transmits; the network eats it. *)
    if not (Fault_schedule.reachable t.fault ~src ~dst ~time:out_at) then
      t.partitioned <- t.partitioned + 1
    else if dropped then t.dropped <- t.dropped + 1
    else begin
      let at =
        out_at +. base_delay t ~src ~dst +. jitter +. extra_delay_ms t ~src ~time:out_at
      in
      deliver t ~src ~dst ~size ~at msg
    end
  end

(* Fire the envelope's head delivery (crash checked at delivery time, like
   [deliver]'s callback), then chain the timer to the next one. *)
let fire_envelope t env =
  (match env.env_msg with
  | None -> ()
  | Some msg ->
    let dst = env.env_dsts.(env.env_index) in
    if not (Fault_schedule.is_crashed t.fault ~replica:dst ~time:(Engine.now t.engine)) then (
      match t.handlers.(dst) with
      | Some handler -> handler ~src:env.env_src msg
      | None -> ()));
  env.env_index <- env.env_index + 1;
  if env.env_index < env.env_count then
    ignore (Engine.schedule_at t.engine ~at:env.env_times.(env.env_index) env.env_fire)
  else begin
    env.env_msg <- None;
    t.env_pool <- env :: t.env_pool
  end

let alloc_envelope t =
  match t.env_pool with
  | env :: rest ->
    t.env_pool <- rest;
    env
  | [] ->
    let env =
      {
        env_src = 0;
        env_msg = None;
        env_dsts = Array.make t.n 0;
        env_times = Array.make t.n 0.0;
        env_count = 0;
        env_index = 0;
        env_fire = ignore;
      }
    in
    env.env_fire <- (fun () -> fire_envelope t env);
    env

(* Stable insertion sort of the (time, dst) pairs — per-receiver CPU queues
   make delivery times non-monotone in send order, and the chained timer
   must walk them in time order. Groups hold at most n entries and are
   typically tiny (replicas per region). *)
let sort_envelope env =
  for i = 1 to env.env_count - 1 do
    let ti = env.env_times.(i) and di = env.env_dsts.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && env.env_times.(!j) > ti do
      env.env_times.(!j + 1) <- env.env_times.(!j);
      env.env_dsts.(!j + 1) <- env.env_dsts.(!j);
      decr j
    done;
    env.env_times.(!j + 1) <- ti;
    env.env_dsts.(!j + 1) <- di
  done

(* Batched fan-out. Per destination, the egress/jitter/drop/CPU math and the
   RNG draw order are exactly [send]'s — only the engine scheduling differs:
   surviving deliveries are grouped by destination region into pooled
   envelopes, each driven by one chained timer. *)
let broadcast t ~src ~size ?(include_self = true) msg =
  let order =
    match t.config.send_order with
    | Farthest_first -> t.far_order.(src)
    | Fixed_order -> Array.init t.n (fun i -> i)
    | Random_order ->
      let arr = Array.init t.n (fun i -> i) in
      Rng.shuffle t.rngs.(src) arr;
      arr
  in
  let now = Engine.now t.engine in
  if Fault_schedule.is_crashed t.fault ~replica:src ~time:now then ()
  else begin
    let ser = float_of_int size /. t.config.bandwidth_bytes_per_ms in
    let cost = t.config.cpu_fixed_ms +. (float_of_int size *. t.config.cpu_per_byte_ms) in
    Array.iter
      (fun dst ->
        if dst = src then begin
          if include_self then begin
            t.sent <- t.sent + 1;
            deliver t ~src ~dst ~size ~at:(now +. t.config.loopback_ms) msg
          end
        end
        else begin
          t.sent <- t.sent + 1;
          t.bytes <- t.bytes +. float_of_int size;
          let out_at = Float.max now t.egress_free_at.(src) +. ser in
          t.egress_free_at.(src) <- out_at;
          let rng = t.rngs.(src) in
          let drop_rate = Fault_schedule.egress_drop_rate t.fault ~src ~time:out_at in
          let jitter =
            if t.config.jitter_ms <= 0.0 then 0.0
            else Rng.lognormal rng ~mu:(log t.config.jitter_ms) ~sigma:0.5
          in
          let dropped = drop_rate > 0.0 && Rng.bernoulli rng drop_rate in
          if not (Fault_schedule.reachable t.fault ~src ~dst ~time:out_at) then
            t.partitioned <- t.partitioned + 1
          else if dropped then t.dropped <- t.dropped + 1
          else begin
            let at =
              out_at +. base_delay t ~src ~dst +. jitter +. extra_delay_ms t ~src ~time:out_at
            in
            (* Receiver CPU sequencing, eagerly, exactly as [deliver] does. *)
            let start = Float.max at t.cpu_free_at.(dst) in
            let done_at = start +. cost in
            t.cpu_free_at.(dst) <- done_at;
            let region = t.assignment.(dst) in
            let env =
              match t.group_env.(region) with
              | Some env -> env
              | None ->
                let env = alloc_envelope t in
                env.env_src <- src;
                env.env_msg <- Some msg;
                env.env_count <- 0;
                env.env_index <- 0;
                t.group_env.(region) <- Some env;
                env
            in
            env.env_dsts.(env.env_count) <- dst;
            env.env_times.(env.env_count) <- done_at;
            env.env_count <- env.env_count + 1
          end
        end)
      order;
    for region = 0 to t.nregions - 1 do
      match t.group_env.(region) with
      | None -> ()
      | Some env ->
        t.group_env.(region) <- None;
        sort_envelope env;
        ignore (Engine.schedule_at t.engine ~at:env.env_times.(0) env.env_fire)
    done
  end

(* Out-of-band control plane: checkpoint votes and catch-up sync traffic.

   Deliberately bypasses the egress pipe, the jitter/drop RNG streams, and
   the receiver CPU queue: an in-band control message would advance the
   per-sender random stream and the egress/CPU cursors, shifting the timing
   of every subsequent protocol message — and the golden-determinism
   contract requires commit sequences byte-identical with checkpointing on
   vs off. Control traffic still honors crash faults (both ends, crash
   checked again at fire time) and partitions (a pure predicate), so fault
   scenarios exercise it realistically; it is just invisible to the data
   plane's queuing model. Real transports carry the same messages in-band —
   there the OS scheduler, not a seeded RNG, owns timing. *)
let oob_pad_ms = 0.25

let send_oob t ~src ~dst msg =
  let now = Engine.now t.engine in
  if Fault_schedule.is_crashed t.fault ~replica:src ~time:now then ()
  else if not (Fault_schedule.reachable t.fault ~src ~dst ~time:now) then
    t.oob_blocked <- t.oob_blocked + 1
  else begin
    t.oob_sent <- t.oob_sent + 1;
    let at = now +. base_delay t ~src ~dst +. oob_pad_ms in
    ignore
      (Engine.schedule_at t.engine ~at (fun () ->
           if not (Fault_schedule.is_crashed t.fault ~replica:dst ~time:(Engine.now t.engine))
           then begin
             match t.handlers.(dst) with
             | Some handler -> handler ~src msg
             | None -> ()
           end))
  end

let broadcast_oob t ~src ?(include_self = true) msg =
  for dst = 0 to t.n - 1 do
    if dst <> src || include_self then send_oob t ~src ~dst msg
  done

let messages_sent t = t.sent
let messages_dropped t = t.dropped
let messages_partitioned t = t.partitioned
let bytes_sent t = t.bytes
let oob_sent t = t.oob_sent
let oob_blocked t = t.oob_blocked
