type drop_rule = { replicas : int list; rate : float; from_time : float; until_time : float }

type partition = { groups : int list list; from_time : float; until_time : float }

type t = {
  crashes : (int * float) list;
  recoveries : (int * float) list;
  drops : drop_rule list;
  partitions : partition list;
}

let none = { crashes = []; recoveries = []; drops = []; partitions = [] }

let crash t ~replica ~at = { t with crashes = (replica, at) :: t.crashes }

let crash_many t ~replicas ~at =
  List.fold_left (fun t replica -> crash t ~replica ~at) t replicas

let recover t ~replica ~at = { t with recoveries = (replica, at) :: t.recoveries }

let drop_egress t ~replicas ~rate ~from_time ?(until_time = infinity) () =
  { t with drops = { replicas; rate; from_time; until_time } :: t.drops }

let partition t ~groups ~from_time ~until_time =
  { t with partitions = { groups; from_time; until_time } :: t.partitions }

let crash_time t ~replica =
  List.fold_left
    (fun acc (r, at) ->
      if r <> replica then acc
      else match acc with None -> Some at | Some prev -> Some (Float.min prev at))
    None t.crashes

(* Crash/recover events interleave into up/down intervals: the replica is
   crashed at [time] iff the latest event at or before [time] is a crash.
   Ties resolve in favour of recovery (a same-instant recover wins). *)
let is_crashed t ~replica ~time =
  let events =
    List.filter_map (fun (r, at) -> if r = replica then Some (at, 0) else None) t.crashes
    @ List.filter_map (fun (r, at) -> if r = replica then Some (at, 1) else None) t.recoveries
  in
  match List.filter (fun (at, _) -> at <= time) events with
  | [] -> false
  | past ->
    let _, kind = List.fold_left (fun acc e -> if compare e acc >= 0 then e else acc)
        (List.hd past) (List.tl past)
    in
    kind = 0

let recovery_time t ~replica =
  List.fold_left
    (fun acc (r, at) ->
      if r <> replica then acc
      else match acc with None -> Some at | Some prev -> Some (Float.min prev at))
    None t.recoveries

let egress_drop_rate t ~src ~time =
  List.fold_left
    (fun acc (rule : drop_rule) ->
      if time >= rule.from_time && time < rule.until_time && List.mem src rule.replicas then
        (* Independent drop sources combine: 1 - (1-a)(1-b). *)
        1.0 -. ((1.0 -. acc) *. (1.0 -. rule.rate))
      else acc)
    0.0 t.drops

let group_of groups replica =
  let rec scan i = function
    | [] -> None
    | g :: rest -> if List.mem replica g then Some i else scan (i + 1) rest
  in
  scan 0 groups

let reachable t ~src ~dst ~time =
  src = dst
  || List.for_all
       (fun p ->
         if time < p.from_time || time >= p.until_time then true
         else begin
           match (group_of p.groups src, group_of p.groups dst) with
           | Some a, Some b -> a = b
           | _ -> true (* replicas not named by the partition are unaffected *)
         end)
       t.partitions

let partitions t = t.partitions

let crashed_replicas t ~time =
  List.filter_map (fun (r, _) -> if is_crashed t ~replica:r ~time then Some r else None) t.crashes
  |> List.sort_uniq compare
