(* Command-line front end for the real-time deployment: the same Shoal++
   replicas the simulator runs, on a wall clock over loopback or Unix-domain
   sockets, with the run's trace and metrics exported on shutdown.

   Examples:
     dune exec bin/shoalpp_node.exe -- -n 4 --duration 2000 --load 200
     dune exec bin/shoalpp_node.exe -- --transport uds --duration 2000
     dune exec bin/shoalpp_node.exe -- --trace-out node.jsonl --metrics-out node.metrics.json *)

module Node = Shoalpp_runtime.Node
module Report = Shoalpp_runtime.Report
module Export = Shoalpp_runtime.Export
module Ledger = Shoalpp_runtime.Ledger
module Prom = Shoalpp_runtime.Prom
module Admin = Shoalpp_backend.Admin_server
module Telemetry = Shoalpp_support.Telemetry
module Config = Shoalpp_core.Config
module Committee = Shoalpp_dag.Committee
module Trace = Shoalpp_sim.Trace
open Cmdliner

let write_file path f =
  match open_out path with
  | oc -> Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
  | exception Sys_error msg ->
    Printf.eprintf "shoalpp_node: cannot write %s (%s)\n" path msg;
    exit 1

type transport_arg = Inproc | Uds | Tcp

let transport_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "inproc" | "loopback" -> Ok Inproc
    | "uds" -> Ok Uds
    | "tcp" -> Ok Tcp
    | other -> Error (`Msg (Printf.sprintf "unknown transport %S (inproc | uds | tcp)" other))
  in
  let print fmt t =
    Format.pp_print_string fmt
      (match t with Inproc -> "inproc" | Uds -> "uds" | Tcp -> "tcp")
  in
  Arg.conv (parse, print)

module Topology = Shoalpp_sim.Topology

(* A topology file is "src dst one_way_ms" triples, one per line (blank
   lines and #-comments skipped); unlisted pairs get 0 ms. Only the listed
   direction is set, so asymmetric links are expressible. *)
let parse_topology_file ~n path =
  let d = Array.make_matrix n n 0.0 in
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let err = ref None and lineno = ref 0 in
        (try
           while !err = None do
             incr lineno;
             let line = String.trim (input_line ic) in
             if line <> "" && line.[0] <> '#' then
               match Scanf.sscanf line " %d %d %f" (fun s t ms -> (s, t, ms)) with
               | src, dst, ms ->
                 if src < 0 || src >= n || dst < 0 || dst >= n then
                   err := Some (Printf.sprintf "%s:%d: replica out of range 0..%d" path !lineno (n - 1))
                 else if not (Float.is_finite ms) || ms < 0.0 then
                   err := Some (Printf.sprintf "%s:%d: delay must be finite and >= 0" path !lineno)
                 else d.(src).(dst) <- ms
               | exception Scanf.Scan_failure _ | exception Failure _ ->
                 err := Some (Printf.sprintf "%s:%d: expected 'src dst one_way_ms'" path !lineno)
           done
         with End_of_file -> ());
        match !err with Some m -> Error m | None -> Ok d)

(* --topology SPEC -> n x n one-way delay matrix for the geography shim.
   Named topologies place replicas round-robin across regions, exactly as
   the simulator does, so a sim run and a realtime run of the same spec see
   the same per-link delays. *)
let parse_topology ~n spec =
  let named t = Ok (Topology.delay_matrix t ~n) in
  match String.split_on_char ':' spec with
  | [ "gcp10" ] -> named (Topology.gcp10 ())
  | [ "uniform"; ms ] -> (
    match float_of_string_opt ms with
    | Some d when Float.is_finite d && d >= 0.0 -> named (Topology.uniform ~delay_ms:d)
    | _ -> Error (Printf.sprintf "bad uniform delay %S (want uniform:MS)" ms))
  | [ "clique"; rest ] -> (
    match String.split_on_char ',' rest with
    | [ r; ms ] -> (
      match (int_of_string_opt r, float_of_string_opt ms) with
      | Some regions, Some one_way_ms when regions > 0 && Float.is_finite one_way_ms && one_way_ms >= 0.0
        ->
        named (Topology.clique ~regions ~one_way_ms)
      | _ -> Error (Printf.sprintf "bad clique spec %S (want clique:REGIONS,MS)" rest))
    | _ -> Error (Printf.sprintf "bad clique spec %S (want clique:REGIONS,MS)" rest))
  | _ when Sys.file_exists spec -> parse_topology_file ~n spec
  | _ ->
    Error
      (Printf.sprintf "unknown topology %S (gcp10 | uniform:MS | clique:REGIONS,MS | FILE)" spec)

let is_replica_sock f =
  Filename.check_suffix f ".sock"
  && String.length f > 8
  && String.sub f 0 8 = "replica-"

(* Remove only the replica sockets the run created. The directory itself is
   deleted only when it was our fresh temp dir, never when the user named it
   via --uds-dir; any unrelated files in a user-supplied dir are untouched. *)
let cleanup_uds_dir ~created dir =
  (match Sys.readdir dir with
  | entries ->
    Array.iter
      (fun f ->
        if is_replica_sock f then
          try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      entries
  | exception Sys_error _ -> ());
  if created then try Sys.rmdir dir with Sys_error _ -> ()

let run n duration load warmup timeout link_delay seed no_verify domains verify_delay
    checkpoint_interval restart transport uds_dir tcp_port coalesce_us topology trace_out
    metrics_out admin_port ledger_tail =
  let committee = Committee.make ~n ~cluster_seed:seed () in
  let protocol =
    let p = Config.shoalpp ~committee in
    let p = if no_verify then Config.without_signature_checks p else p in
    let p = Config.with_checkpoint_interval p (max 0 checkpoint_interval) in
    match timeout with Some ms -> Config.round_timeout p ms | None -> p
  in
  (match restart with
  | Some _ when domains > 1 ->
    Printf.eprintf "shoalpp_node: --restart requires --domains 1\n";
    exit 1
  | _ -> ());
  let transport, cleanup =
    match transport with
    | Inproc -> (Node.Inproc, fun () -> ())
    | Uds ->
      let dir, created =
        match uds_dir with
        | Some d -> (d, false)
        | None ->
          ( Filename.concat (Filename.get_temp_dir_name ())
              (Printf.sprintf "shoalpp-node-%d" (Unix.getpid ())),
            true )
      in
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o700;
      (Node.Uds dir, fun () -> cleanup_uds_dir ~created dir)
    | Tcp -> (Node.Tcp tcp_port, fun () -> ())
  in
  let delays_ms =
    match topology with
    | None -> None
    | Some spec -> (
      match parse_topology ~n spec with
      | Ok d -> Some d
      | Error msg ->
        Printf.eprintf "shoalpp_node: --topology: %s\n" msg;
        exit 1)
  in
  let trace = if trace_out <> None then Some (Trace.create ~enabled:true ~capacity:65536 ()) else None in
  let setup =
    {
      (Node.default_setup ~protocol) with
      Node.load_tps = load;
      warmup_ms = warmup;
      seed;
      transport;
      link_delay_ms = link_delay;
      coalesce_us = Float.max 0.0 coalesce_us;
      delays_ms;
      trace;
      domains = max 1 domains;
      verify_delay_us = Float.max 0.0 verify_delay;
      retain_wal = Option.is_some restart;
    }
  in
  let node = Node.create setup in
  (* Restart drill: crash the highest-id replica mid-run and bring it back
     through the checkpoint-anchored recovery path (WAL replay + peer
     catch-up sync when --checkpoint-interval is set). *)
  (match restart with
  | None -> ()
  | Some (crash_at, recover_at) ->
    let i = n - 1 in
    let bk = Node.backend node in
    ignore
      (Shoalpp_backend.Backend.schedule bk ~after:(Float.max 0.0 crash_at) (fun () ->
           Node.crash_replica node i));
    ignore
      (Shoalpp_backend.Backend.schedule bk
         ~after:(Float.max 0.0 (Float.max crash_at recover_at))
         (fun () -> Node.recover_replica node i)));
  Format.printf "shoalpp_node: %d replicas, %s transport, %.0f tps for %.0f ms%s%s%s@." n
    (match transport with
    | Node.Inproc -> "loopback"
    | Node.Uds d -> "uds:" ^ d
    | Node.Tcp p -> Printf.sprintf "tcp:%d" p)
    load duration
    (if setup.Node.domains > 1 then
       Printf.sprintf ", %d domains (per-DAG executors + verify pool)" setup.Node.domains
     else "")
    (if setup.Node.coalesce_us > 0.0 then
       Printf.sprintf ", coalesce %.0f us" setup.Node.coalesce_us
     else "")
    (match topology with Some s -> ", topology " ^ s | None -> "");
  (match Node.tcp_ports node with
  | Some ports ->
    Format.printf "tcp ports: %s@."
      (String.concat "," (Array.to_list (Array.map string_of_int ports)))
  | None -> ());
  (* Live observability plane: scrape endpoints served off the same select
     loop that drives consensus, with repeating gauge refreshes so a
     mid-run scrape sees current values rather than the shutdown snapshot. *)
  let admin =
    match admin_port with
    | None -> None
    | Some port ->
      Node.arm_live_gauges node;
      let routes =
        [
          ("/health", fun () -> { Admin.content_type = "text/plain"; body = "ok\n" });
          ( "/metrics",
            fun () ->
              {
                Admin.content_type = "text/plain; version=0.0.4";
                body = Prom.render (Telemetry.snapshot (Node.telemetry node));
              } );
          ( "/ledger",
            fun () ->
              {
                Admin.content_type = "application/json";
                body = Ledger.json_tail ~limit:ledger_tail (Node.ledger node) ^ "\n";
              } );
        ]
      in
      (match Admin.start (Node.executor node) ~port ~routes () with
      | admin ->
        Format.printf "admin: http://127.0.0.1:%d/metrics (also /health, /ledger)@."
          (Admin.port admin);
        Some admin
      | exception Unix.Unix_error (err, _, _) ->
        Printf.eprintf "shoalpp_node: cannot bind admin port %d (%s)\n" port
          (Unix.error_message err);
        exit 1)
  in
  Node.run node ~duration_ms:duration;
  Format.printf "elapsed: %.0f ms@." (Node.now_ms node);
  (match admin with Some a -> Admin.stop a | None -> ());
  let report = Node.report node ~duration_ms:duration in
  Format.printf "%a@." Report.pp_extended report;
  Format.printf "load: %d submitted, %d committed (backlog %d)@." report.Report.submitted
    report.Report.committed
    (max 0 (report.Report.submitted - report.Report.committed));
  (match Node.verify_pool node with
  | Some pool ->
    Format.printf "verify pool: %d jobs (%d stolen, %d exceptions)@."
      (Shoalpp_backend.Verify_pool.executed pool)
      (Shoalpp_backend.Verify_pool.stolen pool)
      (Shoalpp_backend.Verify_pool.work_exceptions pool)
  | None -> ());
  (match Node.tcp_net_stats node with
  | Some s ->
    Format.printf "tcp: %d flushes, %d coalesced frames, %d reconnects, %d dial failures@."
      s.Shoalpp_backend.Tcp_transport.flushes s.Shoalpp_backend.Tcp_transport.coalesced_frames
      s.Shoalpp_backend.Tcp_transport.reconnects s.Shoalpp_backend.Tcp_transport.dial_failures
  | None -> ());
  if Ledger.recorded (Node.ledger node) > 0 then begin
    Format.printf "per-commit stage attribution (stage x rule x dag, ms):@.";
    print_string (Ledger.breakdown_table report.Report.telemetry)
  end;
  (match restart with
  | None -> ()
  | Some _ ->
    let r = (Node.replicas node).(n - 1) in
    let requests, certs = Shoalpp_core.Replica.sync_stats r in
    Format.printf "restart: replica %d base_seq %d, catch-up %d sync requests, %d certs%s@."
      (n - 1)
      (Shoalpp_core.Replica.base_seq r)
      requests certs
      (if Node.catching_up node (n - 1) then " (still catching up)" else ""));
  let audit = Node.audit node in
  Format.printf "audit: %s; %d segments (common prefix %d); lanes %s@."
    (if audit.Node.consistent_prefixes && audit.Node.duplicate_orders = 0 then
       "consistent logs, no duplicates"
     else "FAILED")
    audit.Node.total_segments audit.Node.prefix_length
    (String.concat ","
       (Array.to_list (Array.map string_of_int audit.Node.anchors_per_lane)));
  (match trace with
  | Some _ ->
    let path = Option.get trace_out in
    (* Node.trace_events merges the per-lane-domain rings of a multicore
       run into one time-sorted stream (at --domains 1 it is exactly the
       main ring's contents). *)
    let events = Node.trace_events node in
    write_file path (fun oc -> Export.write_jsonl oc events);
    Format.printf "trace: %d events -> %s@." (List.length events) path;
    if Node.trace_dropped node > 0 then
      Format.printf
        "WARNING: trace ring dropped %d events — %s holds only the newest %d; raise the ring \
         capacity or shorten the run for a complete trace@."
        (Node.trace_dropped node) path (List.length events)
  | None -> ());
  (match metrics_out with
  | Some path ->
    write_file path (fun oc ->
        Export.write_metrics oc report.Report.telemetry;
        output_char oc '\n');
    Format.printf "metrics: %s@." path
  | None -> ());
  cleanup ();
  if not (audit.Node.consistent_prefixes && audit.Node.duplicate_orders = 0) then exit 1

let cmd =
  let n = Arg.(value & opt int 4 & info [ "n"; "replicas" ] ~doc:"Number of replicas.") in
  let duration =
    Arg.(value & opt float 2_000.0 & info [ "duration" ] ~doc:"Wall-clock run length, ms.")
  in
  let load = Arg.(value & opt float 200.0 & info [ "load" ] ~doc:"Offered load, tx/s.") in
  let warmup = Arg.(value & opt float 0.0 & info [ "warmup" ] ~doc:"Warmup excluded, ms.") in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~doc:"Round timeout override, ms.")
  in
  let link_delay =
    Arg.(
      value
      & opt float 0.0
      & info [ "link-delay" ] ~doc:"Loopback transport: artificial per-message delay, ms.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Cluster seed (keys, clients).") in
  let no_verify =
    Arg.(value & flag & info [ "no-verify" ] ~doc:"Skip signature verification (faster).")
  in
  let domains =
    Arg.(
      value
      & opt int 1
      & info [ "domains" ]
          ~doc:
            "Multicore execution: 1 (default) runs everything on one OCaml domain; N > 1 pins \
             each staggered DAG lane to its own domain and verifies signatures on a \
             work-stealing pool of N worker domains. The commit sequence is identical at any \
             value (merge is by sequence number, never arrival order).")
  in
  let verify_delay =
    Arg.(
      value
      & opt float 0.0
      & info [ "verify-delay-us" ]
          ~doc:
            "Modeled verification service time per signature checked, microseconds (default \
             0: just the simulated HMAC's real cost). Charged once per vote/certificate/header \
             and once per transaction in a proposal's batch — the client-signature term that \
             scales with throughput. The repo's crypto is a seeded model costing ~1us where \
             ed25519/BLS cost tens to hundreds; this charges the difference explicitly, like \
             --link-delay for the network. Paid inline on the event loop at --domains 1 and \
             on the verify pool's workers at --domains N, so the comparison varies only where \
             the cost lands.")
  in
  let checkpoint_interval =
    Arg.(
      value
      & opt int 0
      & info [ "checkpoint-interval" ] ~docv:"C"
          ~doc:
            "Certify a checkpoint (and prune history below it) every C committed anchors; 0 \
             (default) disables the bounded-memory lifecycle. The commit sequence is identical \
             at any value.")
  in
  let restart =
    Arg.(
      value
      & opt (some (pair ~sep:',' float float)) None
      & info [ "restart" ] ~docv:"CRASH_MS,RECOVER_MS"
          ~doc:
            "Restart drill: crash the highest-id replica at CRASH_MS and restart it at \
             RECOVER_MS through WAL replay + checkpoint restore + peer catch-up sync. \
             Requires --domains 1.")
  in
  let transport =
    Arg.(
      value
      & opt transport_conv Inproc
      & info [ "transport" ]
          ~doc:"Message transport: inproc (loopback) | uds (Unix sockets) | tcp (127.0.0.1).")
  in
  let uds_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "uds-dir" ] ~docv:"DIR"
          ~doc:"Socket directory for --transport uds (default: fresh temp dir, removed on exit).")
  in
  let tcp_port =
    Arg.(
      value
      & opt int 0
      & info [ "tcp-port" ] ~docv:"PORT"
          ~doc:
            "Base port for --transport tcp: replica i listens on PORT+i. 0 (default) lets the \
             kernel pick each port (printed at startup).")
  in
  let coalesce_us =
    Arg.(
      value
      & opt float 0.0
      & info [ "coalesce-us" ] ~docv:"US"
          ~doc:
            "TCP write coalescing: aggregate frames to one peer for up to US microseconds (or \
             64 KiB, whichever first) and flush them as a single write. 0 (default) flushes \
             every frame immediately. TCP_NODELAY is always set.")
  in
  let topology =
    Arg.(
      value
      & opt (some string) None
      & info [ "topology" ] ~docv:"SPEC"
          ~doc:
            "Geography shim: add per-(src,dst) one-way delays to every message, over any \
             transport. SPEC is gcp10 (the paper's 10-region GCP RTT matrix, replicas placed \
             round-robin) | uniform:MS | clique:REGIONS,MS | a file of 'src dst one_way_ms' \
             lines.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE" ~doc:"Write the typed event trace as JSONL.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the telemetry snapshot (counters, stage histograms) as JSON.")
  in
  let admin_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "admin-port" ] ~docv:"PORT"
          ~doc:
            "Serve the live admin plane on 127.0.0.1:PORT while the run is in progress: \
             /metrics (Prometheus text), /health, /ledger (JSON tail of recent commits). 0 \
             picks a free port (printed at startup).")
  in
  let ledger_tail =
    Arg.(
      value
      & opt int 256
      & info [ "ledger-tail" ] ~docv:"N" ~doc:"Entries returned by the /ledger endpoint.")
  in
  Cmd.v
    (Cmd.info "shoalpp_node"
       ~doc:"Run a real-time Shoal++ cluster (wall clock, loopback or Unix-domain sockets)")
    Term.(
      const run $ n $ duration $ load $ warmup $ timeout $ link_delay $ seed $ no_verify
      $ domains $ verify_delay $ checkpoint_interval $ restart $ transport $ uds_dir
      $ tcp_port $ coalesce_us $ topology $ trace_out $ metrics_out $ admin_port
      $ ledger_tail)

let () = exit (Cmd.eval cmd)
