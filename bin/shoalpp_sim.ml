(* Command-line front end: run any system of the paper's evaluation on the
   simulated deployment and print the paper-style report.

   Examples:
     dune exec bin/shoalpp_sim.exe -- --system shoal++ -n 16 --load 2000
     dune exec bin/shoalpp_sim.exe -- --system mysticeti --drop 5,0.01,20000 --series
     dune exec bin/shoalpp_sim.exe -- --system bullshark --crashes 5 --duration 30000
     dune exec bin/shoalpp_sim.exe -- --scenario byzantine:count=1,kind=equivocate
     dune exec bin/shoalpp_sim.exe -- --scenario partition:from=8000,dur=20000 --series
     dune exec bin/shoalpp_sim.exe -- --scenario crash-recover:at=5000,recover=15000
     dune exec bin/shoalpp_sim.exe -- --trace-out run.jsonl --chrome-out run.trace.json \
       --metrics-out run.metrics.json *)

module E = Shoalpp_runtime.Experiment
module Report = Shoalpp_runtime.Report
module Export = Shoalpp_runtime.Export
open Cmdliner

let write_file path f =
  match open_out path with
  | oc -> Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
  | exception Sys_error msg ->
    Printf.eprintf "shoalpp_sim: cannot write %s (%s)\n" path msg;
    exit 1

let system_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "shoal++" | "shoalpp" -> Ok E.Shoalpp
    | "shoal" -> Ok E.Shoal
    | "bullshark" -> Ok E.Bullshark
    | "shoal++-faster-anchors" | "faster-anchors" -> Ok E.Shoalpp_faster_anchors
    | "shoal++-more-faster-anchors" | "more-faster-anchors" -> Ok E.Shoalpp_more_faster_anchors
    | "shoal-more-dags" -> Ok E.Shoal_more_dags
    | "bullshark-more-dags" -> Ok E.Bullshark_more_dags
    | "jolteon" -> Ok E.Jolteon
    | "mysticeti" -> Ok E.Mysticeti
    | other -> Error (`Msg (Printf.sprintf "unknown system %S" other))
  in
  let print fmt s = Format.pp_print_string fmt (E.system_name s) in
  Arg.conv (parse, print)

let topology_conv =
  let parse s =
    match String.split_on_char ':' (String.lowercase_ascii s) with
    | [ "gcp10" ] -> Ok E.Gcp10
    | [ "uniform"; ms ] -> (
      match float_of_string_opt ms with
      | Some v -> Ok (E.Uniform v)
      | None -> Error (`Msg "uniform:<one-way-ms>"))
    | [ "clique"; spec ] -> (
      match String.split_on_char ',' spec with
      | [ k; ms ] -> (
        match (int_of_string_opt k, float_of_string_opt ms) with
        | Some k, Some ms -> Ok (E.Clique (k, ms))
        | _ -> Error (`Msg "clique:<regions>,<one-way-ms>"))
      | _ -> Error (`Msg "clique:<regions>,<one-way-ms>"))
    | _ -> Error (`Msg "expected gcp10 | uniform:<ms> | clique:<k>,<ms>")
  in
  let print fmt = function
    | E.Gcp10 -> Format.pp_print_string fmt "gcp10"
    | E.Uniform ms -> Format.fprintf fmt "uniform:%g" ms
    | E.Clique (k, ms) -> Format.fprintf fmt "clique:%d,%g" k ms
  in
  Arg.conv (parse, print)

let scenario_conv =
  let parse s =
    match Shoalpp_sim.Faults.parse s with
    | Ok sc -> Ok sc
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Shoalpp_sim.Faults.pp)

let drop_conv =
  let parse s =
    match String.split_on_char ',' s with
    | [ k; rate; from ] -> (
      match (int_of_string_opt k, float_of_string_opt rate, float_of_string_opt from) with
      | Some k, Some rate, Some from -> Ok (k, rate, from)
      | _ -> Error (`Msg "expected <replicas>,<rate>,<from-ms>"))
    | _ -> Error (`Msg "expected <replicas>,<rate>,<from-ms>")
  in
  let print fmt (k, rate, from) = Format.fprintf fmt "%d,%g,%g" k rate from in
  Arg.conv (parse, print)

let run system n load duration warmup topology crashes scenario drop timeout dags stagger seed
    no_verify checkpoint_interval series trace_out chrome_out metrics_out =
  Shoalpp_baselines.Register.register ();
  let params =
    {
      E.default_params with
      E.n;
      load_tps = load;
      duration_ms = duration;
      warmup_ms = warmup;
      topology;
      crashes;
      scenario;
      drop_spec = drop;
      round_timeout_ms = timeout;
      num_dags = dags;
      stagger_ms = stagger;
      verify_signatures = not no_verify;
      checkpoint_interval = max 0 checkpoint_interval;
      seed;
      trace = trace_out <> None || chrome_out <> None;
    }
  in
  let outcome = E.run system params in
  Format.printf "%a@." Report.pp_extended outcome.E.report;
  Format.printf "audit: %s; requeued=%d; messages=%d (dropped %d); %.1f MB sent@."
    (if outcome.E.audit_ok then "consistent logs, no duplicates" else "FAILED")
    outcome.E.requeued outcome.E.report.Report.messages_sent
    outcome.E.report.Report.messages_dropped
    (outcome.E.report.Report.bytes_sent /. 1.0e6);
  (match trace_out with
  | Some path ->
    write_file path (fun oc -> Export.write_jsonl oc outcome.E.events);
    Format.printf "trace: %d events -> %s@." (List.length outcome.E.events) path
  | None -> ());
  (match chrome_out with
  | Some path ->
    write_file path (fun oc -> Export.write_chrome_trace oc outcome.E.events);
    Format.printf "chrome trace: %s (load in Perfetto or chrome://tracing)@." path
  | None -> ());
  (match metrics_out with
  | Some path ->
    write_file path (fun oc ->
        Export.write_metrics oc outcome.E.report.Report.telemetry;
        output_char oc '\n');
    Format.printf "metrics: %s@." path
  | None -> ());
  if series then begin
    Format.printf "@.time series (1s windows):@.";
    Shoalpp_support.Tablefmt.print
      ~header:[ "t(s)"; "tps"; "mean latency(ms)" ]
      (List.map
         (fun (t, tps) ->
           let lat =
             match List.assoc_opt t outcome.E.latency_series with
             | Some l -> Printf.sprintf "%.0f" l
             | None -> "-"
           in
           [ Printf.sprintf "%.0f" (t /. 1000.0); Printf.sprintf "%.0f" tps; lat ])
         outcome.E.throughput_series)
  end;
  if not outcome.E.audit_ok then exit 1

let cmd =
  let system =
    Arg.(value & opt system_conv E.Shoalpp & info [ "system"; "s" ] ~doc:"System to run.")
  in
  let n = Arg.(value & opt int 16 & info [ "n"; "replicas" ] ~doc:"Number of replicas.") in
  let load = Arg.(value & opt float 1000.0 & info [ "load" ] ~doc:"Offered load, tx/s.") in
  let duration =
    Arg.(value & opt float 30_000.0 & info [ "duration" ] ~doc:"Simulated run length, ms.")
  in
  let warmup = Arg.(value & opt float 3_000.0 & info [ "warmup" ] ~doc:"Warmup excluded, ms.") in
  let topology =
    Arg.(value & opt topology_conv E.Gcp10 & info [ "topology" ] ~doc:"gcp10 | uniform:MS | clique:K,MS.")
  in
  let crashes =
    Arg.(value & opt int 0 & info [ "crashes" ] ~doc:"Crash this many replicas at t=0.")
  in
  let scenario =
    Arg.(
      value
      & opt scenario_conv Shoalpp_sim.Faults.none
      & info [ "scenario" ] ~docv:"SPEC"
          ~doc:
            "Declarative fault scenario: none | byzantine | partition | crash-recover, \
             optionally followed by :key=val,... — e.g. \
             byzantine:count=1,kind=equivocate|silent|delay, \
             partition:from=8000,dur=20000,minority=5, \
             crash-recover:count=1,at=5000,recover=15000.")
  in
  let drop =
    Arg.(value & opt (some drop_conv) None & info [ "drop" ] ~doc:"Egress drops: K,RATE,FROM_MS.")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~doc:"Round timeout override, ms.")
  in
  let dags = Arg.(value & opt (some int) None & info [ "dags" ] ~doc:"Parallel DAGs override.") in
  let stagger =
    Arg.(value & opt (some float) None & info [ "stagger" ] ~doc:"DAG stagger override, ms.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let no_verify =
    Arg.(value & flag & info [ "no-verify" ] ~doc:"Skip signature verification (faster).")
  in
  let checkpoint_interval =
    Arg.(
      value
      & opt int 0
      & info [ "checkpoint-interval" ] ~docv:"C"
          ~doc:
            "Certify a checkpoint (and prune history below it) every C committed anchors; 0 \
             (default) disables the bounded-memory lifecycle. Rounded up to a multiple of the \
             DAG count so the boundary always lands on the round-robin merge seam. Commit \
             sequences are identical at any value.")
  in
  let series = Arg.(value & flag & info [ "series" ] ~doc:"Print per-second time series.") in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE" ~doc:"Write the typed event trace as JSONL.")
  in
  let chrome_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-out" ] ~docv:"FILE"
          ~doc:"Write the event trace in Chrome trace_event JSON (Perfetto-loadable).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the telemetry snapshot (counters, stage histograms) as JSON.")
  in
  Cmd.v
    (Cmd.info "shoalpp_sim" ~doc:"Run a simulated BFT consensus deployment (Shoal++ and baselines)")
    Term.(
      const run $ system $ n $ load $ duration $ warmup $ topology $ crashes $ scenario $ drop
      $ timeout $ dags $ stagger $ seed $ no_verify $ checkpoint_interval $ series $ trace_out
      $ chrome_out $ metrics_out)

let () = exit (Cmd.eval cmd)
