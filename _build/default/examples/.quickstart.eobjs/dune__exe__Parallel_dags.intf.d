examples/parallel_dags.mli:
