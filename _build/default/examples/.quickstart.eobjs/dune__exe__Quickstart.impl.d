examples/quickstart.ml: Array Format List Shoalpp_consensus Shoalpp_core Shoalpp_dag Shoalpp_sim Shoalpp_workload String
