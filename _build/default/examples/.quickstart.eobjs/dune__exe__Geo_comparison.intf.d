examples/geo_comparison.mli:
