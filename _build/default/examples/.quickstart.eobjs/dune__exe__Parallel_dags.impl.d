examples/parallel_dags.ml: Array Format Fun List Printf Shoalpp_consensus Shoalpp_core Shoalpp_dag Shoalpp_runtime Shoalpp_sim Shoalpp_support Shoalpp_workload String
