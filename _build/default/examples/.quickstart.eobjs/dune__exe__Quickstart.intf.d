examples/quickstart.mli:
