(* Fault injection: what the paper's robustness section (§8.3) is about.

   Phase 1 — crash faults: run Shoal++ and crash f replicas mid-run; watch
   reputation rotate the dead replicas out of the anchor schedule and
   latency recover. Phase 2 — message drops: compare certified Shoal++
   against the uncertified Mysticeti baseline under 1% egress drops; the
   uncertified DAG must fetch missing blocks on the critical path and its
   latency spikes, while Shoal++ barely moves (Fig 8).

     dune exec examples/fault_injection.exe *)

module E = Shoalpp_runtime.Experiment
module Cluster = Shoalpp_runtime.Cluster
module Report = Shoalpp_runtime.Report
module Config = Shoalpp_core.Config
module Committee = Shoalpp_dag.Committee
module Topology = Shoalpp_sim.Topology

let () =
  Shoalpp_baselines.Register.register ();

  (* ---------------- Phase 1: crash f replicas mid-run ---------------- *)
  Format.printf "=== crash faults: Shoal++ with f=5 of 16 replicas crashed at t=10s ===@.";
  let committee = Committee.make ~n:16 () in
  let protocol =
    Config.without_signature_checks { (Config.shoalpp ~committee) with Config.stagger_ms = 95.0 }
  in
  let setup = { (Cluster.default_setup ~protocol) with Cluster.load_tps = 1_000.0 } in
  let cluster = Cluster.create setup in
  Cluster.run cluster ~duration_ms:10_000.0;
  for i = 11 to 15 do
    Cluster.crash_now cluster i
  done;
  Format.printf "crashed replicas 11-15 at t=10s...@.";
  Cluster.run cluster ~duration_ms:30_000.0;
  let report = Cluster.report cluster ~duration_ms:30_000.0 in
  Format.printf "%a@." Cluster.pp_report report;
  let audit = Cluster.audit cluster in
  Format.printf "safety: consistent=%b duplicates=%d@." audit.Cluster.consistent_prefixes
    audit.Cluster.duplicate_orders;
  (* Reputation evidence: crashed replicas no longer appear in the anchor
     vectors of surviving replicas. *)
  let r0 = (Cluster.replicas cluster).(0) in
  List.iteri
    (fun dag stats ->
      Format.printf "dag %d: %d segments, %d skipped anchors@." dag
        stats.Shoalpp_consensus.Driver.segments stats.Shoalpp_consensus.Driver.skipped_anchors)
    (Shoalpp_core.Replica.driver_stats r0);

  (* ---------------- Phase 2: message drops, certified vs not ---------- *)
  Format.printf "@.=== message drops: Shoal++ (certified) vs Mysticeti (uncertified) ===@.";
  let params =
    {
      E.default_params with
      E.n = 16;
      load_tps = 1_000.0;
      duration_ms = 40_000.0;
      warmup_ms = 3_000.0;
      drop_spec = Some (1, 0.01, 15_000.0);
      verify_signatures = false;
    }
  in
  List.iter
    (fun sys ->
      let o = E.run sys params in
      let before, after =
        List.partition (fun (t, _) -> t < 15_000.0) o.E.latency_series
      in
      let avg l =
        match List.filter (fun (t, _) -> t >= 3_000.0) l with
        | [] -> nan
        | l -> List.fold_left (fun acc (_, v) -> acc +. v) 0.0 l /. float_of_int (List.length l)
      in
      Format.printf "%-10s: avg latency %.0f ms before drops, %.0f ms after (%.1fx)@."
        (E.system_name sys) (avg before) (avg after)
        (avg after /. avg before))
    [ E.Shoalpp; E.Mysticeti ];
  Format.printf
    "@.certified DAGs keep data recovery off the critical path; uncertified DAGs stall on it.@."
