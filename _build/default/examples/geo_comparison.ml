(* Geo-distributed protocol comparison — the paper's headline scenario in
   miniature (its Fig 5 at one load point).

   Runs Shoal++, Shoal, Bullshark, Jolteon and Mysticeti on the 10-region
   GCP topology and prints the paper-style latency/throughput table plus
   the commit-rule breakdown that explains *why* Shoal++ is fast (nearly
   everything commits via the 4-message-delay Fast Direct Commit rule).

     dune exec examples/geo_comparison.exe *)

module E = Shoalpp_runtime.Experiment
module Report = Shoalpp_runtime.Report
module Tablefmt = Shoalpp_support.Tablefmt

let () =
  Shoalpp_baselines.Register.register ();
  let params =
    {
      E.default_params with
      E.n = 16;
      load_tps = 2_000.0;
      duration_ms = 20_000.0;
      warmup_ms = 3_000.0;
      (* Signature *bytes* still travel and cost bandwidth; skipping the
         HMAC recomputation keeps the example snappy. *)
      verify_signatures = false;
    }
  in
  Format.printf
    "10-region GCP topology, %d replicas, %.0f tx/s offered, %.0f s simulated@.@." params.E.n
    params.E.load_tps
    (params.E.duration_ms /. 1000.0);
  let systems = [ E.Jolteon; E.Bullshark; E.Shoal; E.Mysticeti; E.Shoalpp ] in
  let outcomes = List.map (fun s -> (s, E.run s params)) systems in
  Tablefmt.print
    ~header:(Report.table_header @ [ "fast"; "direct"; "indirect"; "audit" ])
    (List.map
       (fun (_, (o : E.outcome)) ->
         Report.table_row o.E.report
         @ [
             string_of_int o.E.report.Report.fast_commits;
             string_of_int o.E.report.Report.direct_commits;
             string_of_int o.E.report.Report.indirect_commits;
             (if o.E.audit_ok then "ok" else "FAILED");
           ])
       outcomes);
  let p50 sys =
    (List.assoc sys (List.map (fun (s, o) -> (s, o.E.report.Report.latency_p50)) outcomes))
  in
  Format.printf
    "@.Shoal++ vs Shoal: %.0f%% lower median latency; vs Bullshark: %.0f%% lower.@."
    (100.0 *. (1.0 -. (p50 E.Shoalpp /. p50 E.Shoal)))
    (100.0 *. (1.0 -. (p50 E.Shoalpp /. p50 E.Bullshark)))
