(* Agreement property tests: the heart of consensus safety.

   Random certified DAGs are generated (random parent quorums, random
   insertion orders, random notify cadences) and replayed into independent
   drivers. Whatever the DAG looks like and however delivery interleaves,
   all drivers must emit identical ordered logs (the paper's Property 2 /
   Lemma 2). Also: wire-codec fuzzing — mutated bytes must never crash the
   decoder. *)

module Types = Shoalpp_dag.Types
module Store = Shoalpp_dag.Store
module Committee = Shoalpp_dag.Committee
module Driver = Shoalpp_consensus.Driver
module Anchors = Shoalpp_consensus.Anchors
module Rng = Shoalpp_support.Rng

let committee = Committee.make ~n:4 ~cluster_seed:44 ()

let make_node ~round ~author ~parents =
  let batch = Shoalpp_workload.Batch.empty ~created_at:0.0 in
  let digest =
    Types.node_digest ~round ~author ~batch_digest:batch.Shoalpp_workload.Batch.digest ~parents
      ~weak_parents:[]
  in
  {
    Types.round;
    author;
    batch;
    parents;
    weak_parents = [];
    digest;
    signature =
      Shoalpp_crypto.Signer.sign (Committee.keypair committee author)
        (Shoalpp_crypto.Digest32.raw digest);
    created_at = 0.0;
  }

let certify node =
  let preimage =
    Types.vote_preimage ~round:node.Types.round ~author:node.Types.author
      ~digest:node.Types.digest
  in
  let sigs =
    List.init 3 (fun i ->
        (i, Shoalpp_crypto.Signer.sign (Committee.keypair committee i) preimage))
  in
  {
    Types.cn_node = node;
    cn_cert =
      {
        Types.cert_ref = Types.ref_of_node node;
        multisig = Shoalpp_crypto.Multisig.aggregate ~n:4 sigs;
      };
  }

(* Generate a random certified DAG: per round, each author exists with 90%
   probability and references a random >= quorum subset of the previous
   round's nodes. Returns certified nodes in round order. *)
let random_dag ~seed ~rounds =
  let rng = Rng.create seed in
  let all = ref [] in
  let prev = ref [] in
  for round = 0 to rounds do
    let authors = List.filter (fun _ -> round = 0 || Rng.float rng 1.0 < 0.9) [ 0; 1; 2; 3 ] in
    let authors = if List.length authors = 0 then [ 0 ] else authors in
    let nodes =
      List.map
        (fun author ->
          let parents =
            if round = 0 then []
            else begin
              let candidates = Array.of_list !prev in
              Rng.shuffle rng candidates;
              let min_parents = min (Committee.quorum committee) (Array.length candidates) in
              let extra =
                if Array.length candidates > min_parents then
                  Rng.int rng (Array.length candidates - min_parents + 1)
                else 0
              in
              Array.to_list (Array.sub candidates 0 (min_parents + extra))
            end
          in
          certify (make_node ~round ~author ~parents))
        authors
    in
    (* A DAG round needs >= quorum certified nodes to be reachable; if the
       filter produced fewer, top up deterministically. *)
    let nodes =
      if round > 0 && List.length nodes < Committee.quorum committee then
        List.map
          (fun author ->
            certify (make_node ~round ~author ~parents:!prev))
          [ 0; 1; 2 ]
      else nodes
    in
    prev := List.map (fun cn -> Types.ref_of_node cn.Types.cn_node) nodes;
    all := !all @ nodes
  done;
  !all

type replayed = {
  log : (int * int * (int * int) list) list;  (** anchor round, author, ordered positions *)
  stats : Driver.stats;
}

(* Replay [dag] into a fresh driver, notifying every [cadence] insertions;
   [note_probability] controls which proposals contribute weak votes (they
   differ across replicas in reality — weak votes are a local, unordered
   signal, so agreement must hold regardless). *)
let replay ~mode ~fast ~dag ~cadence ~note_seed ~note_probability =
  let rng = Rng.create note_seed in
  let store = Store.create ~n:4 ~genesis_digest:committee.Committee.genesis in
  let segments = ref [] in
  let driver = ref None in
  let d =
    Driver.create
      {
        (Driver.default_config ~committee) with
        Driver.mode;
        fast_commit = fast;
        reputation_enabled = true;
      }
      {
        Driver.now = (fun () -> 0.0);
        cert_ref =
          (fun ~round ~author ->
            Option.map
              (fun (cn : Types.certified_node) -> Types.ref_of_node cn.Types.cn_node)
              (Store.get store ~round ~author));
        request_fetch = (fun _ -> ());
        on_segment = (fun s -> segments := s :: !segments);
        request_gc = (fun ~round:_ -> ());
        direct_guard = None;
      }
      ~store
  in
  driver := Some d;
  List.iteri
    (fun i (cn : Types.certified_node) ->
      if Rng.float rng 1.0 < note_probability then
        ignore (Store.note_proposal store cn.Types.cn_node);
      ignore (Store.add_certified store cn);
      if i mod cadence = 0 then Driver.notify d)
    dag;
  Driver.notify d;
  {
    log =
      List.rev_map
        (fun (s : Driver.segment) ->
          ( s.Driver.anchor.Types.ref_round,
            s.Driver.anchor.Types.ref_author,
            List.map
              (fun (cn : Types.certified_node) ->
                (cn.Types.cn_node.Types.round, cn.Types.cn_node.Types.author))
              s.Driver.nodes ))
        !segments;
    stats = Driver.stats d;
  }

let prop_drivers_agree mode fast name =
  QCheck.Test.make ~name ~count:40
    QCheck.(triple (int_bound 10_000) (int_range 1 9) (int_range 1 9))
    (fun (seed, cadence_a, cadence_b) ->
      let dag = random_dag ~seed ~rounds:8 in
      let a =
        replay ~mode ~fast ~dag ~cadence:cadence_a ~note_seed:(seed + 1) ~note_probability:0.9
      in
      let b =
        replay ~mode ~fast ~dag ~cadence:cadence_b ~note_seed:(seed + 2) ~note_probability:0.6
      in
      (* The replica with fewer weak votes may commit strictly fewer anchors
         (some only later), but their common log prefix must agree. *)
      let rec common_prefix_equal x y =
        match (x, y) with
        | [], _ | _, [] -> true
        | hx :: tx, hy :: ty -> hx = hy && common_prefix_equal tx ty
      in
      common_prefix_equal a.log b.log)

let prop_no_position_ordered_twice =
  QCheck.Test.make ~name:"no position ordered twice" ~count:40 QCheck.(int_bound 10_000)
    (fun seed ->
      let dag = random_dag ~seed ~rounds:8 in
      let r = replay ~mode:Anchors.All_eligible ~fast:true ~dag ~cadence:1 ~note_seed:seed ~note_probability:1.0 in
      let positions = List.concat_map (fun (_, _, nodes) -> nodes) r.log in
      List.length positions = List.length (List.sort_uniq compare positions))

let prop_segments_respect_anchor_order =
  QCheck.Test.make ~name:"anchor rounds non-decreasing within tolerance" ~count:40
    QCheck.(int_bound 10_000)
    (fun seed ->
      let dag = random_dag ~seed ~rounds:8 in
      let r = replay ~mode:Anchors.All_eligible ~fast:true ~dag ~cadence:1 ~note_seed:seed ~note_probability:1.0 in
      (* Anchor rounds may only move forward (within a round the vector
         resolves in order; SKIP_TO only jumps forward). *)
      let rec nondecreasing = function
        | (r1, _, _) :: ((r2, _, _) :: _ as rest) -> r1 <= r2 && nondecreasing rest
        | _ -> true
      in
      nondecreasing r.log)

(* ------------------------------------------------------------------ *)
(* Codec fuzzing. *)

let prop_decoder_never_crashes =
  QCheck.Test.make ~name:"mutated messages never crash the decoder" ~count:300
    QCheck.(triple (int_bound 100_000) small_nat (int_bound 255))
    (fun (seed, pos, byte) ->
      let rng = Rng.create seed in
      let node =
        make_node ~round:0 ~author:Rng.(int rng 4) ~parents:[]
      in
      let encoded = Types.encode_message (Types.Proposal node) in
      let pos = pos mod String.length encoded in
      let mutated = Bytes.of_string encoded in
      Bytes.set mutated pos (Char.chr byte);
      match Types.decode_message ~cluster_seed:44 (Bytes.to_string mutated) with
      | Ok _ | Error _ -> true)

let prop_random_bytes_rejected =
  QCheck.Test.make ~name:"random bytes decode to error" ~count:200
    QCheck.(pair (int_bound 100_000) (int_range 0 200))
    (fun (seed, len) ->
      let rng = Rng.create seed in
      let junk = String.init len (fun _ -> Char.chr (Rng.int rng 256)) in
      match Types.decode_message ~cluster_seed:44 junk with
      | Error _ -> true
      | Ok (Types.Proposal _) | Ok (Types.Fetch_response _) ->
        false (* a random blob must not parse into a signed node *)
      | Ok _ -> false)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "agreement.drivers",
      qsuite
        [
          prop_drivers_agree Anchors.All_eligible true "shoal++ drivers agree on random DAGs";
          prop_drivers_agree Anchors.One_per_round false "shoal drivers agree on random DAGs";
          prop_drivers_agree Anchors.Every_other_round false "bullshark drivers agree on random DAGs";
          prop_no_position_ordered_twice;
          prop_segments_respect_anchor_order;
        ] );
    ( "agreement.fuzz", qsuite [ prop_decoder_never_crashes; prop_random_bytes_rejected ] );
  ]
