(* Tests for the certified-DAG layer: types and wire encoding, validation
   rules, the DAG store (counters, causal traversal, weak edges, GC), and
   the committee configuration. *)

module Types = Shoalpp_dag.Types
module Store = Shoalpp_dag.Store
module Committee = Shoalpp_dag.Committee
module Validation = Shoalpp_dag.Validation
module Digest32 = Shoalpp_crypto.Digest32
module Signer = Shoalpp_crypto.Signer
module Multisig = Shoalpp_crypto.Multisig
module Batch = Shoalpp_workload.Batch
module Transaction = Shoalpp_workload.Transaction

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let committee = Committee.make ~n:4 ~cluster_seed:77 ()

(* ------------------------------------------------------------------ *)
(* Node construction helpers shared by the suites below.               *)

let make_batch ids =
  Batch.make
    ~txns:(List.map (fun id -> Transaction.make ~id ~submitted_at:0.0 ~origin:0 ()) ids)
    ~created_at:0.0

let make_node ?(committee = committee) ?(batch = make_batch []) ?(weak_parents = []) ~round
    ~author ~parents () =
  let digest =
    Types.node_digest ~round ~author ~batch_digest:batch.Batch.digest ~parents ~weak_parents
  in
  let kp = Committee.keypair committee author in
  {
    Types.round;
    author;
    batch;
    parents;
    weak_parents;
    digest;
    signature = Signer.sign kp (Digest32.raw digest);
    created_at = 0.0;
  }

let certify ?(committee = committee) (node : Types.node) =
  let preimage =
    Types.vote_preimage ~round:node.Types.round ~author:node.Types.author
      ~digest:node.Types.digest
  in
  let sigs =
    List.init (Committee.quorum committee) (fun i ->
        (i, Signer.sign (Committee.keypair committee i) preimage))
  in
  {
    Types.cn_node = node;
    cn_cert =
      {
        Types.cert_ref = Types.ref_of_node node;
        multisig = Multisig.aggregate ~n:committee.Committee.n sigs;
      };
  }

(* Build a full certified round: each author references all nodes of the
   previous round (or a chosen subset). *)
let full_round ~round ~parents ?(authors = [ 0; 1; 2; 3 ]) () =
  List.map (fun author -> certify (make_node ~round ~author ~parents ())) authors

let refs_of cns = List.map (fun cn -> Types.ref_of_node cn.Types.cn_node) cns

(* ------------------------------------------------------------------ *)
(* Committee *)

let test_committee_quorums () =
  let c = Committee.make ~n:4 () in
  checki "f" 1 c.Committee.f;
  checki "quorum" 3 (Committee.quorum c);
  checki "weak" 2 (Committee.weak_quorum c);
  checki "fast" 3 (Committee.fast_quorum c);
  let c10 = Committee.make ~n:10 () in
  checki "f of 10" 3 c10.Committee.f;
  checki "quorum of 10" 7 (Committee.quorum c10);
  checki "fast of 10" 7 (Committee.fast_quorum c10);
  Alcotest.check_raises "too small" (Invalid_argument "Committee.make: need n >= 4") (fun () ->
      ignore (Committee.make ~n:3 ()))

let test_committee_genesis_depends_on_seed () =
  let a = Committee.make ~n:4 ~cluster_seed:1 () in
  let b = Committee.make ~n:4 ~cluster_seed:2 () in
  checkb "distinct genesis" false (Digest32.equal a.Committee.genesis b.Committee.genesis)

(* ------------------------------------------------------------------ *)
(* Types: digest binding and wire encoding *)

let test_node_digest_binds_fields () =
  let r0 = full_round ~round:0 ~parents:[] () in
  let parents = refs_of r0 in
  let base = make_node ~round:1 ~author:0 ~parents () in
  let other_round = make_node ~round:2 ~author:0 ~parents:[] () in
  let other_author = make_node ~round:1 ~author:1 ~parents () in
  let other_batch = make_node ~batch:(make_batch [ 9 ]) ~round:1 ~author:0 ~parents () in
  let fewer_parents = make_node ~round:1 ~author:0 ~parents:(List.tl parents) () in
  List.iter
    (fun (name, n) ->
      checkb name false (Digest32.equal base.Types.digest n.Types.digest))
    [
      ("round", other_round); ("author", other_author); ("batch", other_batch);
      ("parents", fewer_parents);
    ]

let test_weak_parents_in_digest () =
  let r0 = full_round ~round:0 ~parents:[] () in
  let weak = [ List.hd (refs_of r0) ] in
  let a = make_node ~round:3 ~author:0 ~parents:(refs_of r0) () in
  (* parents from round 0 are invalid for round 3, but the digest does not
     care — we only test binding here *)
  let b = make_node ~round:3 ~author:0 ~parents:(refs_of r0) ~weak_parents:weak () in
  checkb "weak parents bound" false (Digest32.equal a.Types.digest b.Types.digest)

let roundtrip msg =
  match Types.decode_message ~cluster_seed:committee.Committee.cluster_seed (Types.encode_message msg) with
  | Ok decoded -> decoded
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_encode_decode_proposal () =
  let r0 = full_round ~round:0 ~parents:[] () in
  let node =
    make_node ~batch:(make_batch [ 1; 2; 3 ]) ~round:1 ~author:2 ~parents:(refs_of r0)
      ~weak_parents:[] ()
  in
  match roundtrip (Types.Proposal node) with
  | Types.Proposal n ->
    checkb "digest preserved" true (Digest32.equal node.Types.digest n.Types.digest);
    checki "round" 1 n.Types.round;
    checki "author" 2 n.Types.author;
    checki "txns" 3 (Batch.length n.Types.batch);
    checki "parents" 4 (List.length n.Types.parents);
    (* The decoded node must still validate, signature included. *)
    (match Validation.validate_proposal ~committee ~verify_signatures:true n with
    | Ok () -> ()
    | Error e -> Alcotest.failf "decoded node invalid: %s" e)
  | _ -> Alcotest.fail "wrong message kind"

let test_encode_decode_vote_and_cert () =
  let node = make_node ~round:0 ~author:1 ~parents:[] () in
  let preimage =
    Types.vote_preimage ~round:0 ~author:1 ~digest:node.Types.digest
  in
  let vote =
    {
      Types.vote_round = 0;
      vote_author = 1;
      vote_digest = node.Types.digest;
      voter = 3;
      vote_signature = Signer.sign (Committee.keypair committee 3) preimage;
    }
  in
  (match roundtrip (Types.Vote vote) with
  | Types.Vote v ->
    checki "voter" 3 v.Types.voter;
    (match Validation.validate_vote ~committee ~verify_signatures:true v with
    | Ok () -> ()
    | Error e -> Alcotest.failf "decoded vote invalid: %s" e)
  | _ -> Alcotest.fail "wrong kind");
  let cn = certify node in
  match roundtrip (Types.Certificate cn.Types.cn_cert) with
  | Types.Certificate c -> (
    checki "signers" 3 (Multisig.num_signers c.Types.multisig);
    match Validation.validate_certificate ~committee ~verify_signatures:true c with
    | Ok () -> ()
    | Error e -> Alcotest.failf "decoded cert invalid: %s" e)
  | _ -> Alcotest.fail "wrong kind"

let test_decode_garbage () =
  checkb "garbage rejected" true
    (match Types.decode_message ~cluster_seed:0 "\x09not-a-message" with
    | Error _ -> true
    | Ok _ -> false);
  checkb "empty rejected" true
    (match Types.decode_message ~cluster_seed:0 "" with Error _ -> true | Ok _ -> false)

let test_message_sizes_scale () =
  let small = Types.Proposal (make_node ~round:0 ~author:0 ~parents:[] ()) in
  let big =
    Types.Proposal (make_node ~batch:(make_batch (List.init 100 Fun.id)) ~round:0 ~author:0 ~parents:[] ())
  in
  checkb "batch grows size" true (Types.message_size big > Types.message_size small + (100 * 300));
  let vote_size =
    Types.message_size
      (Types.Vote
         {
           Types.vote_round = 0;
           vote_author = 0;
           vote_digest = Digest32.zero;
           voter = 0;
           vote_signature = Signer.sign (Committee.keypair committee 0) "x";
         })
  in
  checkb "votes are small" true (vote_size < 120)

(* ------------------------------------------------------------------ *)
(* Validation rules *)

let expect_invalid name result =
  checkb name true (match result with Error _ -> true | Ok () -> false)

let expect_valid name result =
  match result with Ok () -> () | Error e -> Alcotest.failf "%s: unexpectedly invalid: %s" name e

let test_validation_round0 () =
  expect_valid "round 0 no parents"
    (Validation.validate_proposal ~committee ~verify_signatures:true
       (make_node ~round:0 ~author:0 ~parents:[] ()));
  let r0 = full_round ~round:0 ~parents:[] () in
  expect_invalid "round 0 with parents"
    (Validation.validate_proposal ~committee ~verify_signatures:true
       (make_node ~round:0 ~author:0 ~parents:[ List.hd (refs_of r0) ] ()))

let test_validation_parent_rules () =
  let r0 = full_round ~round:0 ~parents:[] () in
  let refs = refs_of r0 in
  expect_valid "quorum parents"
    (Validation.validate_proposal ~committee ~verify_signatures:true
       (make_node ~round:1 ~author:0 ~parents:(List.filteri (fun i _ -> i < 3) refs) ()));
  expect_invalid "too few parents"
    (Validation.validate_proposal ~committee ~verify_signatures:true
       (make_node ~round:1 ~author:0 ~parents:(List.filteri (fun i _ -> i < 2) refs) ()));
  expect_invalid "wrong parent round"
    (Validation.validate_proposal ~committee ~verify_signatures:true
       (make_node ~round:2 ~author:0 ~parents:refs ()));
  let dup = List.hd refs :: List.filteri (fun i _ -> i < 3) refs in
  expect_invalid "duplicate parent author"
    (Validation.validate_proposal ~committee ~verify_signatures:true
       (make_node ~round:1 ~author:0 ~parents:dup ()))

let test_validation_weak_parent_rules () =
  let r0 = full_round ~round:0 ~parents:[] () in
  let r1 = full_round ~round:1 ~parents:(refs_of r0) () in
  let valid_weak = [ List.hd (refs_of r0) ] in
  expect_valid "weak from older round"
    (Validation.validate_proposal ~committee ~verify_signatures:true
       (make_node ~round:2 ~author:0 ~parents:(refs_of r1) ~weak_parents:valid_weak ()));
  expect_invalid "weak from previous round"
    (Validation.validate_proposal ~committee ~verify_signatures:true
       (make_node ~round:2 ~author:0 ~parents:(refs_of r1) ~weak_parents:[ List.hd (refs_of r1) ] ()));
  expect_invalid "duplicate weak parent"
    (Validation.validate_proposal ~committee ~verify_signatures:true
       (make_node ~round:2 ~author:0 ~parents:(refs_of r1)
          ~weak_parents:[ List.hd (refs_of r0); List.hd (refs_of r0) ] ()))

let test_validation_signature () =
  let good = make_node ~round:0 ~author:0 ~parents:[] () in
  let forged = { good with Types.signature = Signer.sign (Committee.keypair committee 1) "x" } in
  expect_invalid "bad signature"
    (Validation.validate_proposal ~committee ~verify_signatures:true forged);
  expect_valid "verification disabled accepts"
    (Validation.validate_proposal ~committee ~verify_signatures:false forged)

let test_validation_digest_binding () =
  let good = make_node ~batch:(make_batch [ 1 ]) ~round:0 ~author:0 ~parents:[] () in
  let tampered = { good with Types.batch = make_batch [ 2 ] } in
  expect_invalid "tampered batch"
    (Validation.validate_proposal ~committee ~verify_signatures:false tampered)

let test_validation_author_range () =
  expect_invalid "author out of range"
    (Validation.validate_proposal ~committee ~verify_signatures:false
       (make_node ~committee:(Committee.make ~n:7 ~cluster_seed:77 ()) ~round:0 ~author:5
          ~parents:[] ()))

let test_validation_certificate_rules () =
  let node = make_node ~round:0 ~author:0 ~parents:[] () in
  let cn = certify node in
  expect_valid "good certificate"
    (Validation.validate_certified_node ~committee ~verify_signatures:true cn);
  (* Too few signers. *)
  let preimage = Types.vote_preimage ~round:0 ~author:0 ~digest:node.Types.digest in
  let weak_cert =
    {
      Types.cert_ref = Types.ref_of_node node;
      multisig =
        Multisig.aggregate ~n:4
          (List.init 2 (fun i -> (i, Signer.sign (Committee.keypair committee i) preimage)));
    }
  in
  expect_invalid "sub-quorum certificate"
    (Validation.validate_certificate ~committee ~verify_signatures:true weak_cert);
  (* Signatures over the wrong digest. *)
  let wrong_preimage = Types.vote_preimage ~round:0 ~author:0 ~digest:Digest32.zero in
  let forged =
    {
      Types.cert_ref = Types.ref_of_node node;
      multisig =
        Multisig.aggregate ~n:4
          (List.init 3 (fun i -> (i, Signer.sign (Committee.keypair committee i) wrong_preimage)));
    }
  in
  expect_invalid "forged multisig"
    (Validation.validate_certificate ~committee ~verify_signatures:true forged);
  (* Certificate for a different node. *)
  let other = make_node ~round:0 ~author:1 ~parents:[] () in
  expect_invalid "mismatched node"
    (Validation.validate_certified_node ~committee ~verify_signatures:true
       { Types.cn_node = other; cn_cert = cn.Types.cn_cert })

(* ------------------------------------------------------------------ *)
(* Store *)

let fresh_store () = Store.create ~n:4 ~genesis_digest:committee.Committee.genesis

let test_store_insert_and_get () =
  let s = fresh_store () in
  let r0 = full_round ~round:0 ~parents:[] () in
  List.iter (fun cn -> checkb "inserted" true (Store.add_certified s cn)) r0;
  checkb "duplicate rejected" false (Store.add_certified s (List.hd r0));
  checki "count" 4 (Store.count_at s ~round:0);
  checki "highest" 0 (Store.highest_round s);
  checkb "get" true (Option.is_some (Store.get s ~round:0 ~author:2));
  checkb "get missing" true (Option.is_none (Store.get s ~round:1 ~author:0));
  let r = Types.ref_of_node (List.hd r0).Types.cn_node in
  checkb "get_by_ref" true (Option.is_some (Store.get_by_ref s r));
  checkb "get_by_ref digest check" true
    (Option.is_none (Store.get_by_ref s { r with Types.ref_digest = Digest32.zero }))

let test_store_counters () =
  let s = fresh_store () in
  let r0 = full_round ~round:0 ~parents:[] () in
  List.iter (fun cn -> ignore (Store.add_certified s cn)) r0;
  (* Three round-1 nodes reference all of round 0; one references only a
     quorum that excludes author 3. *)
  let all_refs = refs_of r0 in
  let partial = List.filteri (fun i _ -> i < 3) all_refs in
  let r1a = certify (make_node ~round:1 ~author:0 ~parents:all_refs ()) in
  let r1b = certify (make_node ~round:1 ~author:1 ~parents:all_refs ()) in
  let r1c = certify (make_node ~round:1 ~author:2 ~parents:partial ()) in
  (* Proposals noted (weak votes) but only two certified. *)
  List.iter (fun cn -> ignore (Store.note_proposal s cn.Types.cn_node)) [ r1a; r1b; r1c ];
  ignore (Store.add_certified s r1a);
  ignore (Store.add_certified s r1b);
  checki "weak votes for (0,0)" 3 (Store.weak_votes s ~round:0 ~author:0);
  checki "weak votes for (0,3)" 2 (Store.weak_votes s ~round:0 ~author:3);
  checki "cert refs for (0,0)" 2 (Store.certified_refs s ~round:0 ~author:0);
  checki "cert refs for (0,3)" 2 (Store.certified_refs s ~round:0 ~author:3);
  (* Re-noting the same author's proposal must not double count. *)
  checkb "first proposal only" false (Store.note_proposal s r1a.Types.cn_node);
  checki "unchanged" 3 (Store.weak_votes s ~round:0 ~author:0)

let test_store_causal_history_order () =
  let s = fresh_store () in
  let r0 = full_round ~round:0 ~parents:[] () in
  List.iter (fun cn -> ignore (Store.add_certified s cn)) r0;
  let r1 = full_round ~round:1 ~parents:(refs_of r0) () in
  List.iter (fun cn -> ignore (Store.add_certified s cn)) r1;
  let anchor = Types.ref_of_node (List.nth r1 2).Types.cn_node in
  match Store.causal_history s anchor ~skip:(fun _ -> false) with
  | Error _ -> Alcotest.fail "history should be complete"
  | Ok nodes ->
    checki "4 ancestors + anchor" 5 (List.length nodes);
    let positions =
      List.map (fun cn -> (cn.Types.cn_node.Types.round, cn.Types.cn_node.Types.author)) nodes
    in
    Alcotest.(check (list (pair int int)))
      "deterministic (round, author) order"
      [ (0, 0); (0, 1); (0, 2); (0, 3); (1, 2) ]
      positions

let test_store_causal_history_skip () =
  let s = fresh_store () in
  let r0 = full_round ~round:0 ~parents:[] () in
  List.iter (fun cn -> ignore (Store.add_certified s cn)) r0;
  let r1 = full_round ~round:1 ~parents:(refs_of r0) () in
  List.iter (fun cn -> ignore (Store.add_certified s cn)) r1;
  let anchor = Types.ref_of_node (List.hd r1).Types.cn_node in
  (* Skip everything from round 0: only the anchor remains. *)
  match Store.causal_history s anchor ~skip:(fun r -> r.Types.ref_round = 0) with
  | Ok [ only ] -> checki "anchor only" 1 only.Types.cn_node.Types.round
  | Ok l -> Alcotest.failf "expected 1 node, got %d" (List.length l)
  | Error _ -> Alcotest.fail "unexpected missing"

let test_store_causal_history_missing () =
  let s = fresh_store () in
  let r0 = full_round ~round:0 ~parents:[] () in
  (* Insert only 3 of 4 round-0 nodes; the round-1 node references all 4. *)
  List.iteri (fun i cn -> if i < 3 then ignore (Store.add_certified s cn)) r0;
  let r1n = certify (make_node ~round:1 ~author:0 ~parents:(refs_of r0) ()) in
  ignore (Store.add_certified s r1n);
  match Store.causal_history s (Types.ref_of_node r1n.Types.cn_node) ~skip:(fun _ -> false) with
  | Error [ missing ] ->
    checki "missing author" 3 missing.Types.ref_author;
    checki "missing round" 0 missing.Types.ref_round
  | Error l -> Alcotest.failf "expected 1 missing, got %d" (List.length l)
  | Ok _ -> Alcotest.fail "should report missing ancestor"

let test_store_weak_edges_traversed () =
  let s = fresh_store () in
  let r0 = full_round ~round:0 ~parents:[] () in
  List.iter (fun cn -> ignore (Store.add_certified s cn)) r0;
  (* Round 1 references only authors 0-2; author 3's round-0 node is
     orphaned. A round-2 node rescues it via a weak edge. *)
  let partial = List.filteri (fun i _ -> i < 3) (refs_of r0) in
  let orphan_ref = List.nth (refs_of r0) 3 in
  let r1 = full_round ~round:1 ~parents:partial () in
  List.iter (fun cn -> ignore (Store.add_certified s cn)) r1;
  let rescuer =
    certify (make_node ~round:2 ~author:0 ~parents:(refs_of r1) ~weak_parents:[ orphan_ref ] ())
  in
  ignore (Store.add_certified s rescuer);
  let anchor = Types.ref_of_node rescuer.Types.cn_node in
  (match Store.causal_history s anchor ~skip:(fun _ -> false) with
  | Ok nodes ->
    checkb "orphan included via weak edge" true
      (List.exists
         (fun cn -> cn.Types.cn_node.Types.round = 0 && cn.Types.cn_node.Types.author = 3)
         nodes)
  | Error _ -> Alcotest.fail "unexpected missing");
  checkb "is_ancestor via weak edge" true (Store.is_ancestor s ~ancestor:orphan_ref ~of_:anchor);
  checkb "position_ancestor via weak edge" true
    (Store.position_ancestor s ~round:0 ~author:3 ~of_:anchor);
  (* Weak edges must NOT count as commit votes. *)
  checki "no cert ref from weak edge" 0 (Store.certified_refs s ~round:0 ~author:3)

let test_store_ancestor_queries () =
  let s = fresh_store () in
  let r0 = full_round ~round:0 ~parents:[] () in
  List.iter (fun cn -> ignore (Store.add_certified s cn)) r0;
  let r1 = full_round ~round:1 ~parents:(refs_of r0) () in
  List.iter (fun cn -> ignore (Store.add_certified s cn)) r1;
  let a = Types.ref_of_node (List.hd r0).Types.cn_node in
  let b = Types.ref_of_node (List.hd r1).Types.cn_node in
  checkb "ancestor" true (Store.is_ancestor s ~ancestor:a ~of_:b);
  checkb "not descendant" false (Store.is_ancestor s ~ancestor:b ~of_:a);
  checkb "reflexive" true (Store.is_ancestor s ~ancestor:a ~of_:a);
  checkb "position ancestor" true (Store.position_ancestor s ~round:0 ~author:0 ~of_:b);
  checkb "position non-ancestor same round" false
    (Store.position_ancestor s ~round:1 ~author:1 ~of_:b)

let test_store_prune () =
  let s = fresh_store () in
  let r0 = full_round ~round:0 ~parents:[] () in
  List.iter (fun cn -> ignore (Store.add_certified s cn)) r0;
  let r1 = full_round ~round:1 ~parents:(refs_of r0) () in
  List.iter (fun cn -> ignore (Store.add_certified s cn)) r1;
  checki "dropped" 4 (Store.prune_below s ~round:1);
  checki "lowest" 1 (Store.lowest_retained s);
  checki "round 0 gone" 0 (Store.count_at s ~round:0);
  checki "round 1 kept" 4 (Store.count_at s ~round:1);
  (* Causal traversal no longer reports pruned ancestors as missing. *)
  match
    Store.causal_history s (Types.ref_of_node (List.hd r1).Types.cn_node) ~skip:(fun _ -> false)
  with
  | Ok nodes -> checki "cut at GC horizon" 1 (List.length nodes)
  | Error _ -> Alcotest.fail "pruned refs must not count as missing"

let prop_store_counters_match_naive =
  QCheck.Test.make ~name:"certified_refs matches naive count" ~count:50
    QCheck.(list_of_size Gen.(1 -- 4) (int_bound 3))
    (fun authors ->
      let authors = List.sort_uniq compare authors in
      let s = fresh_store () in
      let r0 = full_round ~round:0 ~parents:[] () in
      List.iter (fun cn -> ignore (Store.add_certified s cn)) r0;
      (* Certify round-1 nodes only for [authors], each referencing all. *)
      let r1 = full_round ~round:1 ~parents:(refs_of r0) ~authors () in
      List.iter (fun cn -> ignore (Store.add_certified s cn)) r1;
      List.for_all
        (fun a -> Store.certified_refs s ~round:0 ~author:a = List.length authors)
        [ 0; 1; 2; 3 ])

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "dag.committee",
      [
        Alcotest.test_case "quorums" `Quick test_committee_quorums;
        Alcotest.test_case "genesis per seed" `Quick test_committee_genesis_depends_on_seed;
      ] );
    ( "dag.types",
      [
        Alcotest.test_case "digest binds fields" `Quick test_node_digest_binds_fields;
        Alcotest.test_case "weak parents in digest" `Quick test_weak_parents_in_digest;
        Alcotest.test_case "proposal roundtrip" `Quick test_encode_decode_proposal;
        Alcotest.test_case "vote/cert roundtrip" `Quick test_encode_decode_vote_and_cert;
        Alcotest.test_case "garbage rejected" `Quick test_decode_garbage;
        Alcotest.test_case "message sizes" `Quick test_message_sizes_scale;
      ] );
    ( "dag.validation",
      [
        Alcotest.test_case "round 0" `Quick test_validation_round0;
        Alcotest.test_case "parent rules" `Quick test_validation_parent_rules;
        Alcotest.test_case "weak parent rules" `Quick test_validation_weak_parent_rules;
        Alcotest.test_case "signature" `Quick test_validation_signature;
        Alcotest.test_case "digest binding" `Quick test_validation_digest_binding;
        Alcotest.test_case "author range" `Quick test_validation_author_range;
        Alcotest.test_case "certificate rules" `Quick test_validation_certificate_rules;
      ] );
    ( "dag.store",
      [
        Alcotest.test_case "insert and get" `Quick test_store_insert_and_get;
        Alcotest.test_case "counters" `Quick test_store_counters;
        Alcotest.test_case "causal history order" `Quick test_store_causal_history_order;
        Alcotest.test_case "causal history skip" `Quick test_store_causal_history_skip;
        Alcotest.test_case "causal history missing" `Quick test_store_causal_history_missing;
        Alcotest.test_case "weak edges traversed" `Quick test_store_weak_edges_traversed;
        Alcotest.test_case "ancestor queries" `Quick test_store_ancestor_queries;
        Alcotest.test_case "prune" `Quick test_store_prune;
      ]
      @ qsuite [ prop_store_counters_match_naive ] );
  ]
