(* Tests for the crypto substrate: SHA-256 against FIPS vectors, digests,
   simulated signatures and multi-signatures, Merkle proofs, and the wire
   codec. *)

module Sha256 = Shoalpp_crypto.Sha256
module Digest32 = Shoalpp_crypto.Digest32
module Signer = Shoalpp_crypto.Signer
module Multisig = Shoalpp_crypto.Multisig
module Merkle = Shoalpp_crypto.Merkle
module Bitset = Shoalpp_support.Bitset
module Wire = Shoalpp_codec.Wire

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* SHA-256 *)

let test_sha_vectors () =
  let cases =
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      ( String.make 1_000_000 'a',
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0" );
    ]
  in
  List.iter
    (fun (input, expected) -> checks "vector" expected (Sha256.to_hex (Sha256.digest_string input)))
    cases

let test_sha_block_boundaries () =
  (* Lengths around the 64-byte block and padding boundaries. *)
  List.iter
    (fun len ->
      let s = String.init len (fun i -> Char.chr (i land 0xff)) in
      let ctx = Sha256.init () in
      Sha256.feed_string ctx s;
      checks
        (Printf.sprintf "len %d incremental = one-shot" len)
        (Sha256.to_hex (Sha256.digest_string s))
        (Sha256.to_hex (Sha256.finalize ctx)))
    [ 0; 1; 54; 55; 56; 63; 64; 65; 119; 120; 127; 128; 1000 ]

let prop_sha_incremental =
  QCheck.Test.make ~name:"chunked feeding matches one-shot" ~count:100
    QCheck.(pair (string_of_size Gen.(0 -- 300)) (int_bound 64))
    (fun (s, chunk) ->
      let chunk = max 1 chunk in
      let ctx = Sha256.init () in
      let rec feed pos =
        if pos < String.length s then begin
          let len = min chunk (String.length s - pos) in
          Sha256.feed_string ctx (String.sub s pos len);
          feed (pos + len)
        end
      in
      feed 0;
      String.equal (Sha256.finalize ctx) (Sha256.digest_string s))

let test_sha_finalize_twice_raises () =
  let ctx = Sha256.init () in
  ignore (Sha256.finalize ctx);
  Alcotest.check_raises "reuse" (Invalid_argument "Sha256: context already finalized") (fun () ->
      ignore (Sha256.finalize ctx))

let test_hmac_vectors () =
  (* RFC 4231 test case 2 and the classic quick-brown-fox vector. *)
  checks "rfc4231-2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Sha256.to_hex (Sha256.hmac ~key:"Jefe" "what do ya want for nothing?"));
  checks "fox"
    "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
    (Sha256.to_hex (Sha256.hmac ~key:"key" "The quick brown fox jumps over the lazy dog"))

let test_hmac_long_key () =
  (* Keys longer than the block size are pre-hashed; must not raise and must
     differ from the same message under a different long key. *)
  let k1 = String.make 100 'k' and k2 = String.make 100 'l' in
  checkb "long keys distinct" false (String.equal (Sha256.hmac ~key:k1 "m") (Sha256.hmac ~key:k2 "m"))

(* ------------------------------------------------------------------ *)
(* Digest32 *)

let test_digest32_basics () =
  let d = Digest32.of_string "hello" in
  checki "raw length" 32 (String.length (Digest32.raw d));
  checki "hex length" 64 (String.length (Digest32.hex d));
  checki "short hex" 8 (String.length (Digest32.short_hex d));
  checkb "self equal" true (Digest32.equal d d);
  checkb "zero differs" false (Digest32.equal d Digest32.zero);
  Alcotest.check_raises "of_raw wrong size" (Invalid_argument "Digest32.of_raw: need 32 bytes")
    (fun () -> ignore (Digest32.of_raw "short"))

let test_digest32_concat_order_sensitive () =
  let a = Digest32.of_string "a" and b = Digest32.of_string "b" in
  checkb "order matters" false (Digest32.equal (Digest32.concat [ a; b ]) (Digest32.concat [ b; a ]))

let prop_digest32_hash_consistent =
  QCheck.Test.make ~name:"equal digests hash equal" ~count:100 QCheck.string (fun s ->
      let a = Digest32.of_string s and b = Digest32.of_string s in
      Digest32.equal a b && Digest32.hash a = Digest32.hash b && Digest32.compare a b = 0)

(* ------------------------------------------------------------------ *)
(* Signer *)

let test_signer_roundtrip () =
  let kp = Signer.keygen ~cluster_seed:5 ~replica:3 in
  let s = Signer.sign kp "message" in
  checkb "verifies" true (Signer.verify ~cluster_seed:5 3 "message" s);
  checkb "wrong message" false (Signer.verify ~cluster_seed:5 3 "other" s);
  checkb "wrong replica" false (Signer.verify ~cluster_seed:5 4 "message" s);
  checkb "wrong cluster" false (Signer.verify ~cluster_seed:6 3 "message" s)

let test_signer_deterministic_keys () =
  let a = Signer.keygen ~cluster_seed:1 ~replica:0 in
  let b = Signer.keygen ~cluster_seed:1 ~replica:0 in
  checkb "same signature" true (String.equal (Signer.raw (Signer.sign a "m")) (Signer.raw (Signer.sign b "m")))

let test_signer_of_raw () =
  let kp = Signer.keygen ~cluster_seed:1 ~replica:0 in
  let s = Signer.sign kp "m" in
  let s' = Signer.of_raw (Signer.raw s) in
  checkb "roundtrip verifies" true (Signer.verify ~cluster_seed:1 0 "m" s');
  Alcotest.check_raises "bad length" (Invalid_argument "Signer.of_raw: need 32 bytes") (fun () ->
      ignore (Signer.of_raw "xx"))

(* ------------------------------------------------------------------ *)
(* Multisig *)

let sigs_over ~cluster_seed ~msg replicas =
  List.map
    (fun r ->
      let kp = Signer.keygen ~cluster_seed ~replica:r in
      (r, Signer.sign kp msg))
    replicas

let test_multisig_roundtrip () =
  let msg = "vote preimage" in
  let agg = Multisig.aggregate ~n:7 (sigs_over ~cluster_seed:9 ~msg [ 0; 2; 5 ]) in
  checki "signers" 3 (Multisig.num_signers agg);
  check Alcotest.(list int) "signer ids" [ 0; 2; 5 ] (Bitset.to_list (Multisig.signers agg));
  checkb "verifies" true (Multisig.verify ~cluster_seed:9 agg msg);
  checkb "wrong message" false (Multisig.verify ~cluster_seed:9 agg "other")

let test_multisig_order_insensitive () =
  let msg = "m" in
  let a = Multisig.aggregate ~n:5 (sigs_over ~cluster_seed:1 ~msg [ 3; 1; 4 ]) in
  let b = Multisig.aggregate ~n:5 (sigs_over ~cluster_seed:1 ~msg [ 1; 4; 3 ]) in
  checkb "same aggregate verifies" true (Multisig.verify ~cluster_seed:1 a msg && Multisig.verify ~cluster_seed:1 b msg);
  check Alcotest.(list int) "same signers" (Bitset.to_list (Multisig.signers a))
    (Bitset.to_list (Multisig.signers b))

let test_multisig_duplicate_rejected () =
  let msg = "m" in
  Alcotest.check_raises "duplicate" (Invalid_argument "Multisig.aggregate: duplicate signer")
    (fun () -> ignore (Multisig.aggregate ~n:5 (sigs_over ~cluster_seed:1 ~msg [ 2; 2 ])))

let test_multisig_out_of_range_rejected () =
  let msg = "m" in
  Alcotest.check_raises "range" (Invalid_argument "Multisig.aggregate: signer out of range")
    (fun () -> ignore (Multisig.aggregate ~n:3 (sigs_over ~cluster_seed:1 ~msg [ 3 ])))

let test_multisig_forgery_detected () =
  (* An aggregate built from a signature over a different message must not
     verify over the claimed message. *)
  let honest = sigs_over ~cluster_seed:1 ~msg:"real" [ 0; 1 ] in
  let forged = (2, Signer.sign (Signer.keygen ~cluster_seed:1 ~replica:2) "fake") :: honest in
  let agg = Multisig.aggregate ~n:4 forged in
  checkb "forgery rejected" false (Multisig.verify ~cluster_seed:1 agg "real")

let test_multisig_wire_size () =
  let agg = Multisig.aggregate ~n:100 (sigs_over ~cluster_seed:1 ~msg:"m" [ 0; 99 ]) in
  checki "48 + ceil(100/8)" (48 + 13) (Multisig.wire_size agg)

(* ------------------------------------------------------------------ *)
(* Merkle *)

let leaves n = List.init n (fun i -> Digest32.of_string (Printf.sprintf "leaf-%d" i))

let test_merkle_empty () =
  let t = Merkle.of_leaves [] in
  checkb "zero root" true (Digest32.equal (Merkle.root t) Digest32.zero);
  checki "size" 0 (Merkle.size t)

let test_merkle_single () =
  let l = Digest32.of_string "only" in
  let t = Merkle.of_leaves [ l ] in
  checkb "root is leaf" true (Digest32.equal (Merkle.root t) l);
  checkb "proof verifies" true
    (Merkle.verify_proof ~root:(Merkle.root t) ~leaf:l ~index:0 ~size:1 (Merkle.prove t 0))

let test_merkle_proofs_all_sizes () =
  List.iter
    (fun n ->
      let ls = leaves n in
      let t = Merkle.of_leaves ls in
      List.iteri
        (fun i leaf ->
          checkb
            (Printf.sprintf "n=%d i=%d" n i)
            true
            (Merkle.verify_proof ~root:(Merkle.root t) ~leaf ~index:i ~size:n (Merkle.prove t i)))
        ls)
    [ 2; 3; 4; 5; 7; 8; 9; 16; 33 ]

let test_merkle_wrong_leaf_fails () =
  let ls = leaves 8 in
  let t = Merkle.of_leaves ls in
  let proof = Merkle.prove t 3 in
  checkb "wrong leaf" false
    (Merkle.verify_proof ~root:(Merkle.root t) ~leaf:(Digest32.of_string "evil") ~index:3 ~size:8 proof);
  checkb "wrong index" false
    (Merkle.verify_proof ~root:(Merkle.root t) ~leaf:(List.nth ls 3) ~index:4 ~size:8 proof)

let test_merkle_out_of_range () =
  let t = Merkle.of_leaves (leaves 4) in
  Alcotest.check_raises "oob" (Invalid_argument "Merkle.prove: index out of range") (fun () ->
      ignore (Merkle.prove t 4))

let prop_merkle_root_changes_with_leaf =
  QCheck.Test.make ~name:"changing any leaf changes the root" ~count:50
    QCheck.(pair (int_range 1 20) (int_bound 19))
    (fun (n, i) ->
      let i = i mod n in
      let ls = leaves n in
      let modified = List.mapi (fun j l -> if j = i then Digest32.of_string "tampered" else l) ls in
      not (Digest32.equal (Merkle.root (Merkle.of_leaves ls)) (Merkle.root (Merkle.of_leaves modified))))

(* ------------------------------------------------------------------ *)
(* Wire codec *)

let test_wire_scalars () =
  let w = Wire.Writer.create () in
  Wire.Writer.uint w 300;
  Wire.Writer.u8 w 0xAB;
  Wire.Writer.u32 w 0xDEADBEEF;
  Wire.Writer.u64 w 0x1122334455667788L;
  Wire.Writer.float w 3.14;
  Wire.Writer.bytes w "hello";
  let r = Wire.Reader.of_string (Wire.Writer.contents w) in
  checki "uint" 300 (Wire.Reader.uint r);
  checki "u8" 0xAB (Wire.Reader.u8 r);
  checki "u32" 0xDEADBEEF (Wire.Reader.u32 r);
  check Alcotest.int64 "u64" 0x1122334455667788L (Wire.Reader.u64 r);
  check (Alcotest.float 1e-12) "float" 3.14 (Wire.Reader.float r);
  checks "bytes" "hello" (Wire.Reader.bytes r);
  checkb "at end" true (Wire.Reader.at_end r);
  Wire.Reader.expect_end r

let test_wire_list () =
  let w = Wire.Writer.create () in
  Wire.Writer.list w (Wire.Writer.uint w) [ 1; 2; 3 ];
  let r = Wire.Reader.of_string (Wire.Writer.contents w) in
  check Alcotest.(list int) "list" [ 1; 2; 3 ] (Wire.Reader.list r Wire.Reader.uint)

let test_wire_truncated () =
  let r = Wire.Reader.of_string "\x05ab" in
  (* length prefix says 5, only 2 bytes remain *)
  checkb "raises malformed" true
    (match Wire.Reader.bytes r with
    | exception Wire.Reader.Malformed _ -> true
    | _ -> false)

let test_wire_trailing_bytes () =
  let r = Wire.Reader.of_string "\x01\x02" in
  ignore (Wire.Reader.u8 r);
  checkb "trailing detected" true
    (match Wire.Reader.expect_end r with exception Wire.Reader.Malformed _ -> true | () -> false)

let test_wire_digest_roundtrip () =
  let d = Digest32.of_string "x" in
  let w = Wire.Writer.create () in
  Wire.Writer.digest w d;
  let r = Wire.Reader.of_string (Wire.Writer.contents w) in
  checkb "digest" true (Digest32.equal d (Wire.Reader.digest r))

let prop_wire_string_roundtrip =
  QCheck.Test.make ~name:"length-prefixed bytes roundtrip" ~count:200 QCheck.string (fun s ->
      let w = Wire.Writer.create () in
      Wire.Writer.bytes w s;
      let r = Wire.Reader.of_string (Wire.Writer.contents w) in
      String.equal s (Wire.Reader.bytes r) && Wire.Reader.at_end r)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "crypto.sha256",
      [
        Alcotest.test_case "FIPS vectors" `Slow test_sha_vectors;
        Alcotest.test_case "block boundaries" `Quick test_sha_block_boundaries;
        Alcotest.test_case "finalize twice raises" `Quick test_sha_finalize_twice_raises;
        Alcotest.test_case "hmac vectors" `Quick test_hmac_vectors;
        Alcotest.test_case "hmac long key" `Quick test_hmac_long_key;
      ]
      @ qsuite [ prop_sha_incremental ] );
    ( "crypto.digest32",
      [
        Alcotest.test_case "basics" `Quick test_digest32_basics;
        Alcotest.test_case "concat order" `Quick test_digest32_concat_order_sensitive;
      ]
      @ qsuite [ prop_digest32_hash_consistent ] );
    ( "crypto.signer",
      [
        Alcotest.test_case "sign/verify" `Quick test_signer_roundtrip;
        Alcotest.test_case "deterministic keys" `Quick test_signer_deterministic_keys;
        Alcotest.test_case "of_raw" `Quick test_signer_of_raw;
      ] );
    ( "crypto.multisig",
      [
        Alcotest.test_case "roundtrip" `Quick test_multisig_roundtrip;
        Alcotest.test_case "order insensitive" `Quick test_multisig_order_insensitive;
        Alcotest.test_case "duplicate rejected" `Quick test_multisig_duplicate_rejected;
        Alcotest.test_case "out of range rejected" `Quick test_multisig_out_of_range_rejected;
        Alcotest.test_case "forgery detected" `Quick test_multisig_forgery_detected;
        Alcotest.test_case "wire size" `Quick test_multisig_wire_size;
      ] );
    ( "crypto.merkle",
      [
        Alcotest.test_case "empty" `Quick test_merkle_empty;
        Alcotest.test_case "single" `Quick test_merkle_single;
        Alcotest.test_case "proofs all sizes" `Quick test_merkle_proofs_all_sizes;
        Alcotest.test_case "wrong leaf fails" `Quick test_merkle_wrong_leaf_fails;
        Alcotest.test_case "out of range" `Quick test_merkle_out_of_range;
      ]
      @ qsuite [ prop_merkle_root_changes_with_leaf ] );
    ( "codec.wire",
      [
        Alcotest.test_case "scalars" `Quick test_wire_scalars;
        Alcotest.test_case "lists" `Quick test_wire_list;
        Alcotest.test_case "truncated" `Quick test_wire_truncated;
        Alcotest.test_case "trailing bytes" `Quick test_wire_trailing_bytes;
        Alcotest.test_case "digest roundtrip" `Quick test_wire_digest_roundtrip;
      ]
      @ qsuite [ prop_wire_string_roundtrip ] );
  ]
