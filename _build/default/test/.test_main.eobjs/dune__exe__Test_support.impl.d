test/test_support.ml: Alcotest Array Buffer Float Fun Gen Int Int64 List Option Printf QCheck QCheck_alcotest Set Shoalpp_support String
