test/test_consensus.ml: Alcotest List Option Shoalpp_consensus Shoalpp_crypto Shoalpp_dag Shoalpp_workload
