test/test_dag.ml: Alcotest Fun Gen List Option QCheck QCheck_alcotest Shoalpp_crypto Shoalpp_dag Shoalpp_workload
