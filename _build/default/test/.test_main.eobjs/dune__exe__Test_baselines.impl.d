test/test_baselines.ml: Alcotest Printf Shoalpp_baselines Shoalpp_dag Shoalpp_runtime Shoalpp_sim
