test/test_agreement.ml: Array Bytes Char List Option QCheck QCheck_alcotest Shoalpp_consensus Shoalpp_crypto Shoalpp_dag Shoalpp_support Shoalpp_workload String
