test/test_sim.ml: Alcotest Array List Printf Shoalpp_crypto Shoalpp_sim Shoalpp_storage
