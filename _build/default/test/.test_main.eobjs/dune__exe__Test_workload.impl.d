test/test_workload.ml: Alcotest List Printf Shoalpp_crypto Shoalpp_sim Shoalpp_workload
