test/test_crypto.ml: Alcotest Char Gen List Printf QCheck QCheck_alcotest Shoalpp_codec Shoalpp_crypto Shoalpp_support String
