test/test_instance.ml: Alcotest Array Hashtbl List Option Printf Shoalpp_crypto Shoalpp_dag Shoalpp_sim Shoalpp_workload
