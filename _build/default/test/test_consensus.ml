(* Tests for the consensus layer: reputation determinism and exclusion,
   anchor schedules, and the ordering driver's three commit rules (fast,
   direct, indirect) plus the skip logic — all over hand-constructed DAG
   stores so that every scenario is exact. *)

module Types = Shoalpp_dag.Types
module Store = Shoalpp_dag.Store
module Committee = Shoalpp_dag.Committee
module Reputation = Shoalpp_consensus.Reputation
module Anchors = Shoalpp_consensus.Anchors
module Driver = Shoalpp_consensus.Driver

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let committee = Committee.make ~n:4 ~cluster_seed:66 ()

(* ------------------------------------------------------------------ *)
(* Reputation *)

let test_reputation_cold_start_all () =
  let r = Reputation.create ~n:4 ~enabled:true () in
  checki "all eligible" 4 (List.length (Reputation.eligible r ~round:1 ~slot:1));
  (* Rotation differs by slot. *)
  checkb "slots rotate" true
    (Reputation.eligible r ~round:1 ~slot:1 <> Reputation.eligible r ~round:1 ~slot:2)

let test_reputation_disabled_round_robin () =
  let r = Reputation.create ~n:4 ~enabled:false () in
  Alcotest.(check (list int)) "slot 0" [ 0; 1; 2; 3 ] (Reputation.eligible r ~round:5 ~slot:0);
  Alcotest.(check (list int)) "slot 2" [ 2; 3; 0; 1 ] (Reputation.eligible r ~round:5 ~slot:2)

let test_reputation_supporters_vs_stragglers () =
  let r = Reputation.create ~n:4 ~staleness:3 ~enabled:true () in
  (* Authors 0-2 support every anchor through round 10; author 3's nodes
     are only swept into histories late (never a supporter). *)
  for round = 1 to 10 do
    Reputation.observe_segment r ~anchor_round:round ~supporters:[ 0; 1; 2 ]
      ~node_positions:[ (round, 0); (round, 1); (round - 1, 2); (round - 4, 3) ]
  done;
  checkb "supporter active" true (Reputation.is_active r ~round:11 0);
  checkb "straggler inactive" false (Reputation.is_active r ~round:11 3);
  let eligible = Reputation.eligible r ~round:11 ~slot:11 in
  checkb "straggler excluded" false (List.mem 3 eligible);
  checki "three eligible" 3 (List.length eligible)

let test_reputation_recovers () =
  let r = Reputation.create ~n:4 ~staleness:3 ~enabled:true () in
  for round = 1 to 5 do
    Reputation.observe_segment r ~anchor_round:round ~supporters:[ 0; 1; 2 ]
      ~node_positions:[ (round, 0); (round, 1); (round, 2) ]
  done;
  checkb "3 excluded" false (List.mem 3 (Reputation.eligible r ~round:6 ~slot:6));
  (* Author 3 supports an anchor again. *)
  Reputation.observe_segment r ~anchor_round:6 ~supporters:[ 3 ] ~node_positions:[ (6, 3) ];
  checkb "3 restored" true (List.mem 3 (Reputation.eligible r ~round:7 ~slot:7))

let test_reputation_scores_order () =
  let r = Reputation.create ~n:4 ~enabled:true () in
  (* Author 2 supports twice as often. *)
  for round = 1 to 8 do
    Reputation.observe_segment r ~anchor_round:round
      ~supporters:(2 :: (if round mod 2 = 0 then [ 0; 1; 3 ] else []))
      ~node_positions:[]
  done;
  (match Reputation.eligible r ~round:9 ~slot:9 with
  | best :: _ -> checki "highest score first" 2 best
  | [] -> Alcotest.fail "empty");
  checkb "score visible" true (Reputation.score r 2 > Reputation.score r 0)

let test_reputation_window_eviction () =
  let r = Reputation.create ~n:4 ~window:4 ~enabled:true () in
  for round = 1 to 4 do
    Reputation.observe_segment r ~anchor_round:round ~supporters:[ 0 ]
      ~node_positions:[ (round, 0) ]
  done;
  checki "score in window" 4 (Reputation.score r 0);
  for round = 5 to 8 do
    Reputation.observe_segment r ~anchor_round:round ~supporters:[ 1 ]
      ~node_positions:[ (round, 1) ]
  done;
  checki "old segments evicted" 0 (Reputation.score r 0)

let test_reputation_duplicate_supporters_once () =
  let r = Reputation.create ~n:4 ~enabled:true () in
  Reputation.observe_segment r ~anchor_round:1 ~supporters:[ 2; 2; 2 ] ~node_positions:[];
  checki "dedup" 1 (Reputation.score r 2)

let test_reputation_determinism () =
  let feed r =
    for round = 1 to 6 do
      Reputation.observe_segment r ~anchor_round:round
        ~supporters:[ round mod 4; (round + 1) mod 4 ]
        ~node_positions:[ (round, round mod 4); (round - 1, (round + 1) mod 4) ]
    done
  in
  let a = Reputation.create ~n:4 ~enabled:true () in
  let b = Reputation.create ~n:4 ~enabled:true () in
  feed a;
  feed b;
  for round = 7 to 10 do
    Alcotest.(check (list int))
      "same vectors"
      (Reputation.eligible a ~round ~slot:round)
      (Reputation.eligible b ~round ~slot:round)
  done

(* ------------------------------------------------------------------ *)
(* Anchors *)

let test_anchor_modes () =
  let r = Reputation.create ~n:4 ~enabled:false () in
  checki "round 0 never anchored" 0 (List.length (Anchors.candidates Anchors.All_eligible r ~round:0));
  checki "bullshark even round empty" 0
    (List.length (Anchors.candidates Anchors.Every_other_round r ~round:2));
  checki "bullshark odd round single" 1
    (List.length (Anchors.candidates Anchors.Every_other_round r ~round:3));
  checki "shoal single" 1 (List.length (Anchors.candidates Anchors.One_per_round r ~round:2));
  checki "shoal++ all" 4 (List.length (Anchors.candidates Anchors.All_eligible r ~round:2))

let test_bullshark_anchor_rotation_covers_all () =
  let r = Reputation.create ~n:4 ~enabled:false () in
  let anchors =
    List.filter_map
      (fun round ->
        match Anchors.candidates Anchors.Every_other_round r ~round with
        | [ a ] -> Some a
        | _ -> None)
      [ 1; 3; 5; 7 ]
  in
  Alcotest.(check (list int)) "round-robin over all replicas" [ 0; 1; 2; 3 ]
    (List.sort compare anchors)

let test_instance_anchor_is_head () =
  let r = Reputation.create ~n:4 ~enabled:false () in
  checki "head of rotation" (5 mod 4) (Anchors.instance_anchor r ~round:5)

(* ------------------------------------------------------------------ *)
(* Driver *)

(* Hand-built DAG machinery (shared with test_dag via local copies). *)
let make_node ?(weak_parents = []) ~round ~author ~parents () =
  let batch = Shoalpp_workload.Batch.empty ~created_at:0.0 in
  let digest =
    Types.node_digest ~round ~author
      ~batch_digest:batch.Shoalpp_workload.Batch.digest ~parents ~weak_parents
  in
  let kp = Committee.keypair committee author in
  {
    Types.round;
    author;
    batch;
    parents;
    weak_parents;
    digest;
    signature = Shoalpp_crypto.Signer.sign kp (Shoalpp_crypto.Digest32.raw digest);
    created_at = 0.0;
  }

let certify node =
  let preimage =
    Types.vote_preimage ~round:node.Types.round ~author:node.Types.author
      ~digest:node.Types.digest
  in
  let sigs =
    List.init 3 (fun i -> (i, Shoalpp_crypto.Signer.sign (Committee.keypair committee i) preimage))
  in
  {
    Types.cn_node = node;
    cn_cert =
      { Types.cert_ref = Types.ref_of_node node; multisig = Shoalpp_crypto.Multisig.aggregate ~n:4 sigs };
  }

type dctx = {
  store : Store.t;
  driver : Driver.t;
  mutable segments : Driver.segment list; (* newest first *)
}

let make_driver ?(mode = Anchors.All_eligible) ?(fast = true) ?(reputation = false) () =
  let store = Store.create ~n:4 ~genesis_digest:committee.Committee.genesis in
  let ctx = ref None in
  let cfg =
    {
      (Driver.default_config ~committee) with
      Driver.mode;
      fast_commit = fast;
      reputation_enabled = reputation;
    }
  in
  let driver =
    Driver.create cfg
      {
        Driver.now = (fun () -> 0.0);
        cert_ref =
          (fun ~round ~author ->
            Option.map
              (fun cn -> Types.ref_of_node cn.Types.cn_node)
              (Store.get store ~round ~author));
        request_fetch = (fun _ -> ());
        on_segment =
          (fun s ->
            match !ctx with Some c -> c.segments <- s :: c.segments | None -> ());
        request_gc = (fun ~round:_ -> ());
        direct_guard = None;
      }
      ~store
  in
  let c = { store; driver; segments = [] } in
  ctx := Some c;
  c

(* Insert a full certified round where each node references [parents]. Also
   note the proposals so weak votes accumulate. *)
let add_round ctx ~round ~parents ?(authors = [ 0; 1; 2; 3 ]) ?(note = true) () =
  let cns = List.map (fun author -> certify (make_node ~round ~author ~parents ())) authors in
  List.iter
    (fun cn ->
      if note then ignore (Store.note_proposal ctx.store cn.Types.cn_node);
      ignore (Store.add_certified ctx.store cn);
      Driver.notify ctx.driver)
    cns;
  List.map (fun cn -> Types.ref_of_node cn.Types.cn_node) cns

let segment_anchors ctx =
  List.rev_map
    (fun (s : Driver.segment) ->
      (s.Driver.anchor.Types.ref_round, s.Driver.anchor.Types.ref_author, s.Driver.kind))
    ctx.segments

let test_driver_fast_commit () =
  let ctx = make_driver () in
  let r0 = add_round ctx ~round:0 ~parents:[] () in
  let r1 = add_round ctx ~round:1 ~parents:r0 () in
  (* Round-2 proposals noted (weak votes) but NOT certified: only the fast
     rule can fire for round-1 anchors. *)
  List.iter
    (fun author ->
      ignore (Store.note_proposal ctx.store (make_node ~round:2 ~author ~parents:r1 ()));
      Driver.notify ctx.driver)
    [ 0; 1; 2 ];
  let anchors = segment_anchors ctx in
  checki "all four round-1 anchors fast-committed" 4 (List.length anchors);
  List.iter (fun (r, _, kind) ->
      checki "round" 1 r;
      checkb "fast" true (kind = Driver.Fast))
    anchors;
  (* Every segment's nodes are disjoint and cover round 0 + its anchor. *)
  let all_nodes =
    List.concat_map (fun (s : Driver.segment) -> s.Driver.nodes) ctx.segments
  in
  let positions =
    List.map (fun cn -> (cn.Types.cn_node.Types.round, cn.Types.cn_node.Types.author)) all_nodes
  in
  checki "8 nodes ordered exactly once" 8 (List.length (List.sort_uniq compare positions));
  checki "no duplicates" 8 (List.length positions)

let test_driver_fast_needs_fast_quorum () =
  let ctx = make_driver () in
  let r0 = add_round ctx ~round:0 ~parents:[] () in
  let r1 = add_round ctx ~round:1 ~parents:r0 () in
  (* Only 2 weak votes (f+1 = 2 < 2f+1 = 3): nothing commits. *)
  List.iter
    (fun author ->
      ignore (Store.note_proposal ctx.store (make_node ~round:2 ~author ~parents:r1 ()));
      Driver.notify ctx.driver)
    [ 0; 1 ];
  checki "no commit below fast quorum" 0 (List.length ctx.segments)

let test_driver_direct_commit_without_fast () =
  let ctx = make_driver ~fast:false () in
  let r0 = add_round ctx ~round:0 ~parents:[] () in
  let r1 = add_round ctx ~round:1 ~parents:r0 () in
  (* Certify only 2 round-2 nodes (= f+1): direct rule fires, fast is off. *)
  ignore (add_round ctx ~round:2 ~parents:r1 ~authors:[ 0; 1 ] ());
  let anchors = segment_anchors ctx in
  checkb "round-1 anchors committed" true (List.length anchors >= 4);
  List.iter (fun (_, _, kind) -> checkb "direct kind" true (kind = Driver.Direct))
    (List.filteri (fun i _ -> i < 4) anchors)

let test_driver_direct_needs_weak_quorum () =
  let ctx = make_driver ~fast:false () in
  let r0 = add_round ctx ~round:0 ~parents:[] () in
  let r1 = add_round ctx ~round:1 ~parents:r0 () in
  ignore (add_round ctx ~round:2 ~parents:r1 ~authors:[ 0 ] ());
  checki "one certified ref insufficient" 0 (List.length ctx.segments)

let test_driver_indirect_skip () =
  (* Round-1 candidate head is never referenced: rounds 2+ reference only a
     quorum that excludes it. The driver must resolve it via the indirect
     path and skip it, committing the instance anchor instead. *)
  let ctx = make_driver ~fast:false () in
  let r0 = add_round ctx ~round:0 ~parents:[] () in
  (* Head candidate for round 1 in disabled-reputation rotation is author
     1 (slot = round = 1). Build round 1 fully, but make rounds 2+ reference
     only authors 0,2,3 of round 1. *)
  let r1 = add_round ctx ~round:1 ~parents:r0 () in
  let r1_partial = List.filter (fun (r : Types.node_ref) -> r.Types.ref_author <> 1) r1 in
  let r2 = add_round ctx ~round:2 ~parents:r1_partial () in
  let r3 = add_round ctx ~round:3 ~parents:r2 () in
  let _r4 = add_round ctx ~round:4 ~parents:r3 () in
  let anchors = segment_anchors ctx in
  checkb "something committed" true (anchors <> []);
  (* Candidate (1,1) must never be an anchor of any segment. *)
  checkb "skipped candidate not an anchor" true
    (not (List.exists (fun (r, a, _) -> r = 1 && a = 1) anchors));
  (* Its node is also not in any causal history (nothing references it). *)
  let all_nodes =
    List.concat_map (fun (s : Driver.segment) -> s.Driver.nodes) ctx.segments
  in
  checkb "orphan not ordered" true
    (not
       (List.exists
          (fun cn -> cn.Types.cn_node.Types.round = 1 && cn.Types.cn_node.Types.author = 1)
          all_nodes));
  (* The other round-1 candidates (authors 0,2,3 — after the skip-to) and
     round-2+ anchors commit; ordering stats reflect at least one skip. *)
  let stats = Driver.stats ctx.driver in
  checkb "skip recorded" true (stats.Driver.skipped_anchors > 0)

let test_driver_two_replicas_agree () =
  (* Replay the same DAG into two drivers with different notify timings:
     the ordered logs must be identical (Property 2 / Lemma 2). *)
  let build notify_every =
    let ctx = make_driver () in
    let counter = ref 0 in
    let maybe_notify () =
      incr counter;
      if !counter mod notify_every = 0 then Driver.notify ctx.driver
    in
    let r0 = ref [] and prev = ref [] in
    for round = 0 to 5 do
      let parents = if round = 0 then [] else !prev in
      let cns = List.map (fun a -> certify (make_node ~round ~author:a ~parents ())) [ 0; 1; 2; 3 ] in
      List.iter
        (fun cn ->
          ignore (Store.note_proposal ctx.store cn.Types.cn_node);
          ignore (Store.add_certified ctx.store cn);
          maybe_notify ())
        cns;
      prev := List.map (fun cn -> Types.ref_of_node cn.Types.cn_node) cns;
      if round = 0 then r0 := !prev
    done;
    Driver.notify ctx.driver;
    List.map
      (fun (s : Driver.segment) ->
        ( s.Driver.anchor.Types.ref_round,
          s.Driver.anchor.Types.ref_author,
          List.map
            (fun cn -> (cn.Types.cn_node.Types.round, cn.Types.cn_node.Types.author))
            s.Driver.nodes ))
      (List.rev ctx.segments)
  in
  let log1 = build 1 and log7 = build 7 in
  checkb "non-empty" true (log1 <> []);
  checkb "identical ordered logs" true (log1 = log7)

let test_driver_bullshark_mode () =
  let ctx = make_driver ~mode:Anchors.Every_other_round ~fast:false () in
  let prev = ref [] in
  for round = 0 to 5 do
    let parents = if round = 0 then [] else !prev in
    prev := add_round ctx ~round ~parents ()
  done;
  let anchors = segment_anchors ctx in
  (* Anchors only in odd rounds, one per round. *)
  List.iter (fun (r, _, _) -> checkb "odd round" true (r mod 2 = 1)) anchors;
  checkb "multiple waves" true (List.length anchors >= 2);
  (* Everything from covered rounds is ordered. *)
  let stats = Driver.stats ctx.driver in
  checkb "nodes ordered" true (stats.Driver.nodes_ordered >= 12)

let test_driver_gc_requested () =
  let gc_calls = ref [] in
  let store = Store.create ~n:4 ~genesis_digest:committee.Committee.genesis in
  let cfg = { (Driver.default_config ~committee) with Driver.gc_depth = 2 } in
  let driver =
    Driver.create cfg
      {
        Driver.now = (fun () -> 0.0);
        cert_ref =
          (fun ~round ~author ->
            Option.map (fun cn -> Types.ref_of_node cn.Types.cn_node) (Store.get store ~round ~author));
        request_fetch = (fun _ -> ());
        on_segment = (fun _ -> ());
        request_gc = (fun ~round -> gc_calls := round :: !gc_calls);
        direct_guard = None;
      }
      ~store
  in
  let prev = ref [] in
  for round = 0 to 6 do
    let parents = if round = 0 then [] else !prev in
    let cns = List.map (fun a -> certify (make_node ~round ~author:a ~parents ())) [ 0; 1; 2; 3 ] in
    List.iter
      (fun cn ->
        ignore (Store.note_proposal store cn.Types.cn_node);
        ignore (Store.add_certified store cn);
        Driver.notify driver)
      cns;
    prev := List.map (fun cn -> Types.ref_of_node cn.Types.cn_node) cns
  done;
  checkb "gc requested below horizon" true (List.exists (fun r -> r >= 1) !gc_calls)

let test_driver_stats_consistent () =
  let ctx = make_driver () in
  let prev = ref [] in
  for round = 0 to 4 do
    let parents = if round = 0 then [] else !prev in
    prev := add_round ctx ~round ~parents ()
  done;
  let stats = Driver.stats ctx.driver in
  checki "segments = commits"
    (stats.Driver.fast_commits + stats.Driver.direct_commits + stats.Driver.indirect_commits)
    stats.Driver.segments;
  checki "segments = emitted" (List.length ctx.segments) stats.Driver.segments

let suite =
  [
    ( "consensus.reputation",
      [
        Alcotest.test_case "cold start all eligible" `Quick test_reputation_cold_start_all;
        Alcotest.test_case "disabled round robin" `Quick test_reputation_disabled_round_robin;
        Alcotest.test_case "supporters vs stragglers" `Quick test_reputation_supporters_vs_stragglers;
        Alcotest.test_case "duplicate supporters once" `Quick test_reputation_duplicate_supporters_once;
        Alcotest.test_case "recovers" `Quick test_reputation_recovers;
        Alcotest.test_case "scores order" `Quick test_reputation_scores_order;
        Alcotest.test_case "window eviction" `Quick test_reputation_window_eviction;
        Alcotest.test_case "determinism" `Quick test_reputation_determinism;
      ] );
    ( "consensus.anchors",
      [
        Alcotest.test_case "modes" `Quick test_anchor_modes;
        Alcotest.test_case "bullshark rotation" `Quick test_bullshark_anchor_rotation_covers_all;
        Alcotest.test_case "instance anchor" `Quick test_instance_anchor_is_head;
      ] );
    ( "consensus.driver",
      [
        Alcotest.test_case "fast commit" `Quick test_driver_fast_commit;
        Alcotest.test_case "fast needs 2f+1" `Quick test_driver_fast_needs_fast_quorum;
        Alcotest.test_case "direct commit" `Quick test_driver_direct_commit_without_fast;
        Alcotest.test_case "direct needs f+1" `Quick test_driver_direct_needs_weak_quorum;
        Alcotest.test_case "indirect skip" `Quick test_driver_indirect_skip;
        Alcotest.test_case "replicas agree" `Quick test_driver_two_replicas_agree;
        Alcotest.test_case "bullshark mode" `Quick test_driver_bullshark_mode;
        Alcotest.test_case "gc requested" `Quick test_driver_gc_requested;
        Alcotest.test_case "stats consistent" `Quick test_driver_stats_consistent;
      ] );
  ]
