(* Final edge-case sweep across modules: growth/boundary behaviours that the
   main suites don't pin down. *)

module Rng = Shoalpp_support.Rng
module Heap = Shoalpp_support.Heap
module Stats = Shoalpp_support.Stats
module Engine = Shoalpp_sim.Engine
module Topology = Shoalpp_sim.Topology
module Committee = Shoalpp_dag.Committee
module Types = Shoalpp_dag.Types
module Store = Shoalpp_dag.Store
module Signer = Shoalpp_crypto.Signer
module Reputation = Shoalpp_consensus.Reputation

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_heap_large_random () =
  let rng = Rng.create 99 in
  let h = Heap.create ~cmp:compare in
  let n = 10_000 in
  for _ = 1 to n do
    Heap.add h (Rng.int rng 1_000)
  done;
  checki "size" n (Heap.length h);
  let rec drain prev count =
    match Heap.pop h with
    | None -> count
    | Some v ->
      checkb "non-decreasing" true (v >= prev);
      drain v (count + 1)
  in
  checki "all drained in order" n (drain min_int 0)

let test_stats_merge_matches_naive () =
  let rng = Rng.create 17 in
  let xs = List.init 500 (fun _ -> Rng.float rng 100.0) in
  let ys = List.init 300 (fun _ -> Rng.float rng 50.0) in
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  List.iter (Stats.Summary.add a) xs;
  List.iter (Stats.Summary.add b) ys;
  let merged = Stats.Summary.merge a b in
  let naive = Stats.Summary.create () in
  List.iter (Stats.Summary.add naive) (xs @ ys);
  Alcotest.(check (float 1e-6)) "mean" (Stats.Summary.mean naive) (Stats.Summary.mean merged);
  Alcotest.(check (float 1e-6)) "stddev" (Stats.Summary.stddev naive) (Stats.Summary.stddev merged);
  checki "count" (Stats.Summary.count naive) (Stats.Summary.count merged)

let test_engine_cancel_after_fire_noop () =
  let e = Engine.create () in
  let fired = ref 0 in
  let t = Engine.schedule e ~after:1.0 (fun () -> incr fired) in
  Engine.run e;
  Engine.cancel t;
  (* cancelling twice, and after firing, must be harmless *)
  Engine.cancel t;
  checki "fired once" 1 !fired

let test_engine_cancel_inside_handler () =
  let e = Engine.create () in
  let fired = ref [] in
  let t2 = ref None in
  ignore
    (Engine.schedule e ~after:1.0 (fun () ->
         fired := 1 :: !fired;
         match !t2 with Some t -> Engine.cancel t | None -> ()));
  t2 := Some (Engine.schedule e ~after:2.0 (fun () -> fired := 2 :: !fired));
  Engine.run e;
  Alcotest.(check (list int)) "second cancelled from first" [ 1 ] (List.rev !fired)

let test_store_gc_then_counters_ignore_old () =
  let committee = Committee.make ~n:4 ~cluster_seed:31 () in
  let store = Store.create ~n:4 ~genesis_digest:committee.Committee.genesis in
  let make ~round ~author ~parents =
    let batch = Shoalpp_workload.Batch.empty ~created_at:0.0 in
    let digest =
      Types.node_digest ~round ~author ~batch_digest:batch.Shoalpp_workload.Batch.digest
        ~parents ~weak_parents:[]
    in
    {
      Types.round;
      author;
      batch;
      parents;
      weak_parents = [];
      digest;
      signature =
        Signer.sign (Committee.keypair committee author) (Shoalpp_crypto.Digest32.raw digest);
      created_at = 0.0;
    }
  in
  let certify node =
    {
      Types.cn_node = node;
      cn_cert =
        {
          Types.cert_ref = Types.ref_of_node node;
          multisig =
            Shoalpp_crypto.Multisig.aggregate ~n:4
              (List.init 3 (fun i ->
                   ( i,
                     Signer.sign (Committee.keypair committee i)
                       (Types.vote_preimage ~round:node.Types.round ~author:node.Types.author
                          ~digest:node.Types.digest) )));
        };
    }
  in
  let r0 = List.map (fun a -> certify (make ~round:0 ~author:a ~parents:[])) [ 0; 1; 2; 3 ] in
  List.iter (fun cn -> ignore (Store.add_certified store cn)) r0;
  ignore (Store.prune_below store ~round:1);
  (* A round-1 node arriving after GC must not crash counter updates for its
     pruned parents, and must itself insert fine. *)
  let parents = List.map (fun cn -> Types.ref_of_node cn.Types.cn_node) r0 in
  let late = certify (make ~round:1 ~author:0 ~parents) in
  checkb "inserts" true (Store.add_certified store late);
  checki "no counters below horizon" 0 (Store.certified_refs store ~round:0 ~author:0)

let test_signer_cross_cluster_isolation () =
  let a = Signer.keygen ~cluster_seed:1 ~replica:0 in
  let s = Signer.sign a "m" in
  checkb "verifies in own cluster" true (Signer.verify ~cluster_seed:1 0 "m" s);
  checkb "rejected in other cluster" false (Signer.verify ~cluster_seed:2 0 "m" s)

let test_reputation_slot_rotation_bounds () =
  let r = Reputation.create ~n:5 ~enabled:false () in
  (* Any slot, including huge and zero, yields a permutation of 0..4. *)
  List.iter
    (fun slot ->
      let v = Reputation.eligible r ~round:3 ~slot in
      checki "length" 5 (List.length v);
      Alcotest.(check (list int)) "permutation" [ 0; 1; 2; 3; 4 ] (List.sort compare v))
    [ 0; 1; 4; 5; 49; 1_000_003 ]

let test_topology_clique_diagonal () =
  let t = Topology.clique ~regions:3 ~one_way_ms:40.0 in
  checkb "intra-region fast" true (Topology.one_way_ms t 1 1 < 1.0);
  Alcotest.(check (float 1e-9)) "inter" 40.0 (Topology.one_way_ms t 0 2)

let test_batch_empty_wire_size () =
  let b = Shoalpp_workload.Batch.empty ~created_at:0.0 in
  checki "header only" 4 (Shoalpp_workload.Batch.wire_size b)

let test_committee_larger_sizes () =
  List.iter
    (fun n ->
      let c = Committee.make ~n () in
      checki "n-f = 2f+1 at n=3f+1" (Committee.quorum c) (Committee.fast_quorum c)
      |> fun () -> checkb "f+1 <= quorum" true (Committee.weak_quorum c <= Committee.quorum c))
    [ 4; 7; 10; 100 ]

let suite =
  [
    ( "edges",
      [
        Alcotest.test_case "heap large random" `Quick test_heap_large_random;
        Alcotest.test_case "stats merge exact" `Quick test_stats_merge_matches_naive;
        Alcotest.test_case "cancel after fire" `Quick test_engine_cancel_after_fire_noop;
        Alcotest.test_case "cancel inside handler" `Quick test_engine_cancel_inside_handler;
        Alcotest.test_case "gc then counters" `Quick test_store_gc_then_counters_ignore_old;
        Alcotest.test_case "signer cluster isolation" `Quick test_signer_cross_cluster_isolation;
        Alcotest.test_case "reputation rotation bounds" `Quick test_reputation_slot_rotation_bounds;
        Alcotest.test_case "topology clique diagonal" `Quick test_topology_clique_diagonal;
        Alcotest.test_case "empty batch size" `Quick test_batch_empty_wire_size;
        Alcotest.test_case "committee sizes" `Quick test_committee_larger_sizes;
      ] );
  ]
