(** Lightweight in-memory event tracing.

    Disabled traces cost one branch per call, so protocol code can trace
    freely. Enabled traces retain the most recent [capacity] events for
    post-mortem inspection in tests and examples. *)

type t

type event = { time : float; replica : int; tag : string; detail : string }

val create : ?enabled:bool -> ?capacity:int -> unit -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> time:float -> replica:int -> tag:string -> string -> unit

val recordf :
  t -> time:float -> replica:int -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the format arguments are not evaluated when tracing is
    disabled. *)

val events : t -> event list
(** Oldest first, up to [capacity]. *)

val count : t -> int
(** Total events recorded (including evicted ones). *)

val find : t -> tag:string -> event list
val clear : t -> unit
val pp_event : Format.formatter -> event -> unit
