module Heap = Shoalpp_support.Heap

type timer = { at : float; seq : int; mutable action : (unit -> unit) option }

type t = {
  queue : timer Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
}

let compare_timer a b =
  let c = compare a.at b.at in
  if c <> 0 then c else compare a.seq b.seq

let create () = { queue = Heap.create ~cmp:compare_timer; clock = 0.0; next_seq = 0; fired = 0 }

let now t = t.clock

let schedule_at t ~at f =
  let at = if at < t.clock then t.clock else at in
  let timer = { at; seq = t.next_seq; action = Some f } in
  t.next_seq <- t.next_seq + 1;
  Heap.add t.queue timer;
  timer

let schedule t ~after f = schedule_at t ~at:(t.clock +. Float.max after 0.0) f

let cancel timer = timer.action <- None
let is_pending timer = Option.is_some timer.action

let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some { action = None; _ } -> step t (* cancelled; skip *)
  | Some { at; action = Some f; _ } ->
    t.clock <- at;
    t.fired <- t.fired + 1;
    f ();
    true

let run ?until ?(max_events = max_int) t =
  let budget = ref max_events in
  let continue_ () =
    if !budget = 0 then false
    else begin
      match Heap.peek t.queue with
      | None -> false
      | Some next -> (
        match until with
        | Some horizon when next.at > horizon -> false
        | _ -> true)
    end
  in
  while continue_ () do
    decr budget;
    ignore (step t)
  done;
  match until with
  | Some horizon when t.clock < horizon && !budget > 0 -> t.clock <- horizon
  | _ -> ()

let pending_events t = Heap.length t.queue
let events_fired t = t.fired
