type drop_rule = { replicas : int list; rate : float; from_time : float; until_time : float }

type t = { crashes : (int * float) list; drops : drop_rule list }

let none = { crashes = []; drops = [] }

let crash t ~replica ~at = { t with crashes = (replica, at) :: t.crashes }

let crash_many t ~replicas ~at =
  List.fold_left (fun t replica -> crash t ~replica ~at) t replicas

let drop_egress t ~replicas ~rate ~from_time ?(until_time = infinity) () =
  { t with drops = { replicas; rate; from_time; until_time } :: t.drops }

let crash_time t ~replica =
  List.fold_left
    (fun acc (r, at) ->
      if r <> replica then acc
      else match acc with None -> Some at | Some prev -> Some (Float.min prev at))
    None t.crashes

let is_crashed t ~replica ~time =
  match crash_time t ~replica with None -> false | Some at -> time >= at

let egress_drop_rate t ~src ~time =
  List.fold_left
    (fun acc rule ->
      if time >= rule.from_time && time < rule.until_time && List.mem src rule.replicas then
        (* Independent drop sources combine: 1 - (1-a)(1-b). *)
        1.0 -. ((1.0 -. acc) *. (1.0 -. rule.rate))
      else acc)
    0.0 t.drops

let crashed_replicas t ~time =
  List.filter_map (fun (r, at) -> if time >= at then Some r else None) t.crashes
  |> List.sort_uniq compare
