(** Fault schedules: crash failures and sporadic egress message drops, the
    two disruption types the paper evaluates (§8.3, Figs 7 and 8). *)

type t

val none : t

val crash : t -> replica:int -> at:float -> t
(** Replica stops sending and receiving from [at] (ms) onward. *)

val crash_many : t -> replicas:int list -> at:float -> t

val drop_egress : t -> replicas:int list -> rate:float -> from_time:float -> ?until_time:float -> unit -> t
(** Each egress message of the listed replicas is independently dropped with
    probability [rate] during the window — the paper's "1% egress drops on
    5 of 100 nodes from t=60 s" scenario. *)

val is_crashed : t -> replica:int -> time:float -> bool

val crash_time : t -> replica:int -> float option

val egress_drop_rate : t -> src:int -> time:float -> float
(** Combined drop probability for messages leaving [src] at [time]. *)

val crashed_replicas : t -> time:float -> int list
