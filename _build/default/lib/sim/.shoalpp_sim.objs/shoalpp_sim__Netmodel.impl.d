lib/sim/netmodel.ml: Array Engine Fault Float Shoalpp_support Topology
