lib/sim/engine.mli:
