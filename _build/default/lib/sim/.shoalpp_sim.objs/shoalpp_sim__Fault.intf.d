lib/sim/fault.mli:
