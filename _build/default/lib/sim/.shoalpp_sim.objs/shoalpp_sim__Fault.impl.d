lib/sim/fault.ml: Float List
