lib/sim/topology.ml: Array Float Printf
