lib/sim/topology.mli:
