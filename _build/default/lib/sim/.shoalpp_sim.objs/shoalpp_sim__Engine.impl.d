lib/sim/engine.ml: Float Option Shoalpp_support
