lib/sim/netmodel.mli: Engine Fault Topology
