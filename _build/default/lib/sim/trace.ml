type event = { time : float; replica : int; tag : string; detail : string }

type t = {
  mutable enabled : bool;
  capacity : int;
  buf : event option array;
  mutable next : int;
  mutable total : int;
}

let create ?(enabled = false) ?(capacity = 4096) () =
  { enabled; capacity; buf = Array.make capacity None; next = 0; total = 0 }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

let record t ~time ~replica ~tag detail =
  if t.enabled then begin
    t.buf.(t.next) <- Some { time; replica; tag; detail };
    t.next <- (t.next + 1) mod t.capacity;
    t.total <- t.total + 1
  end

let recordf t ~time ~replica ~tag fmt =
  if t.enabled then
    Format.kasprintf (fun detail -> record t ~time ~replica ~tag detail) fmt
  else Format.ikfprintf (fun _ -> ()) Format.std_formatter fmt

let events t =
  let acc = ref [] in
  for i = 0 to t.capacity - 1 do
    let idx = (t.next + i) mod t.capacity in
    match t.buf.(idx) with Some e -> acc := e :: !acc | None -> ()
  done;
  List.rev !acc

let count t = t.total
let find t ~tag = List.filter (fun e -> String.equal e.tag tag) (events t)

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.total <- 0

let pp_event fmt e =
  Format.fprintf fmt "[%8.2fms r%d %s] %s" e.time e.replica e.tag e.detail
