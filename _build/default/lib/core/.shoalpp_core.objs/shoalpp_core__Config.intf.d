lib/core/config.mli: Shoalpp_consensus Shoalpp_dag
