lib/core/replica.ml: Array Config Hashtbl List Option Queue Shoalpp_consensus Shoalpp_dag Shoalpp_sim Shoalpp_storage Shoalpp_workload
