lib/core/replica.mli: Config Shoalpp_consensus Shoalpp_dag Shoalpp_sim Shoalpp_storage Shoalpp_workload
