lib/core/config.ml: Printf Shoalpp_consensus Shoalpp_dag
