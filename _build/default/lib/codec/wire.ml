module Varint = Shoalpp_support.Varint
module Digest32 = Shoalpp_crypto.Digest32

module Writer = struct
  type t = Buffer.t

  let create ?(initial = 128) () = Buffer.create initial
  let uint t v = Varint.write t v
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let u32 t v =
    for i = 3 downto 0 do
      Buffer.add_char t (Char.chr ((v lsr (8 * i)) land 0xff))
    done

  let u64 t v =
    for i = 7 downto 0 do
      Buffer.add_char t (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
    done

  let float t v = u64 t (Int64.bits_of_float v)

  let bytes t s =
    uint t (String.length s);
    Buffer.add_string t s

  let raw t s = Buffer.add_string t s
  let digest t d = raw t (Digest32.raw d)

  let list t f l =
    uint t (List.length l);
    List.iter f l

  let size t = Buffer.length t
  let contents t = Buffer.contents t
end

module Reader = struct
  type t = { src : string; mutable pos : int }

  exception Malformed of string

  let of_string src = { src; pos = 0 }

  let need t n =
    if t.pos + n > String.length t.src then raise (Malformed "truncated")

  let uint t =
    match Varint.read t.src t.pos with
    | v, next ->
      t.pos <- next;
      v
    | exception Failure msg -> raise (Malformed msg)

  let u8 t =
    need t 1;
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u32 t =
    need t 4;
    let v = ref 0 in
    for _ = 1 to 4 do
      v := (!v lsl 8) lor Char.code t.src.[t.pos];
      t.pos <- t.pos + 1
    done;
    !v

  let u64 t =
    need t 8;
    let v = ref 0L in
    for _ = 1 to 8 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code t.src.[t.pos]));
      t.pos <- t.pos + 1
    done;
    !v

  let float t = Int64.float_of_bits (u64 t)

  let raw t n =
    if n < 0 then raise (Malformed "negative length");
    need t n;
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let bytes t =
    let n = uint t in
    raw t n

  let digest t = Digest32.of_raw (raw t 32)

  let list t f =
    let n = uint t in
    if n > 1_000_000 then raise (Malformed "list too long");
    List.init n (fun _ -> f t)

  let at_end t = t.pos = String.length t.src
  let expect_end t = if not (at_end t) then raise (Malformed "trailing bytes")
end
