lib/codec/wire.mli: Shoalpp_crypto
