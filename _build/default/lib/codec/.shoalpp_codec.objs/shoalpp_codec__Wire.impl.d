lib/codec/wire.ml: Buffer Char Int64 List Shoalpp_crypto Shoalpp_support String
