type t = {
  q : Transaction.t Queue.t;
  max_pending : int;
  mutable submitted : int;
  mutable rejected : int;
}

let create ?(max_pending = max_int) () =
  { q = Queue.create (); max_pending; submitted = 0; rejected = 0 }

let submit t tx =
  if Queue.length t.q >= t.max_pending then begin
    t.rejected <- t.rejected + 1;
    false
  end
  else begin
    Queue.push tx t.q;
    t.submitted <- t.submitted + 1;
    true
  end

let pull t ~max =
  let rec go acc k =
    if k = 0 || Queue.is_empty t.q then List.rev acc
    else go (Queue.pop t.q :: acc) (k - 1)
  in
  go [] max

let peek_pending t = Queue.length t.q
let submitted t = t.submitted
let rejected t = t.rejected

let oldest_waiting t =
  match Queue.peek_opt t.q with None -> None | Some tx -> Some tx.Transaction.submitted_at
