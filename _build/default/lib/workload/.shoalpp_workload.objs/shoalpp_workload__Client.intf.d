lib/workload/client.mli: Mempool Shoalpp_sim
