lib/workload/client.ml: Mempool Shoalpp_sim Shoalpp_support Transaction
