lib/workload/mempool.mli: Transaction
