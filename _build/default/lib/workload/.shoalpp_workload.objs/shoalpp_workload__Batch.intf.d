lib/workload/batch.mli: Format Shoalpp_crypto Transaction
