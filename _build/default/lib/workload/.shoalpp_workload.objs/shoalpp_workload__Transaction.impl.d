lib/workload/transaction.ml: Format
