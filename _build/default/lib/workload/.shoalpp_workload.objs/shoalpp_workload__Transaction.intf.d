lib/workload/transaction.mli: Format
