lib/workload/mempool.ml: List Queue Transaction
