lib/workload/batch.ml: Format List Shoalpp_codec Shoalpp_crypto Transaction
