type t = { id : int; size : int; submitted_at : float; origin : int }

let default_size = 310

let make ~id ?(size = default_size) ~submitted_at ~origin () = { id; size; submitted_at; origin }

let wire_size t = t.size + 8

let pp fmt t = Format.fprintf fmt "tx#%d(%dB@r%d,%.1fms)" t.id t.size t.origin t.submitted_at
