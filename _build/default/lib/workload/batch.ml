module Digest32 = Shoalpp_crypto.Digest32
module Wire = Shoalpp_codec.Wire

type t = { txns : Transaction.t list; digest : Digest32.t; created_at : float }

let digest_of txns =
  let w = Wire.Writer.create () in
  Wire.Writer.list w
    (fun (tx : Transaction.t) ->
      Wire.Writer.uint w tx.id;
      Wire.Writer.uint w tx.size;
      Wire.Writer.uint w tx.origin)
    txns;
  Digest32.of_string (Wire.Writer.contents w)

let make ~txns ~created_at = { txns; digest = digest_of txns; created_at }
let empty ~created_at = make ~txns:[] ~created_at
let is_empty t = t.txns = []
let length t = List.length t.txns

let wire_size t =
  List.fold_left (fun acc tx -> acc + Transaction.wire_size tx) 4 t.txns

let pp fmt t = Format.fprintf fmt "batch[%d txns, %a]" (length t) Digest32.pp t.digest
