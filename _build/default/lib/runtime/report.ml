module Stats = Shoalpp_support.Stats
module Tablefmt = Shoalpp_support.Tablefmt

type t = {
  name : string;
  n : int;
  load_tps : float;
  duration_ms : float;
  submitted : int;
  committed : int;
  committed_tps : float;
  latency_p25 : float;
  latency_p50 : float;
  latency_p75 : float;
  latency_mean : float;
  fast_commits : int;
  direct_commits : int;
  indirect_commits : int;
  skipped_anchors : int;
  messages_sent : int;
  messages_dropped : int;
  bytes_sent : float;
}

let make ~name ~n ~load_tps ~duration_ms ~submitted ~metrics ?(fast_commits = 0)
    ?(direct_commits = 0) ?(indirect_commits = 0) ?(skipped_anchors = 0) ~messages_sent
    ~messages_dropped ~bytes_sent () =
  let lat = Metrics.latency metrics in
  let p25, p50, p75 = Stats.Summary.quartiles lat in
  {
    name;
    n;
    load_tps;
    duration_ms;
    submitted;
    committed = Metrics.committed metrics;
    committed_tps = Metrics.committed_tps metrics ~duration_ms;
    latency_p25 = p25;
    latency_p50 = p50;
    latency_p75 = p75;
    latency_mean = Stats.Summary.mean lat;
    fast_commits;
    direct_commits;
    indirect_commits;
    skipped_anchors;
    messages_sent;
    messages_dropped;
    bytes_sent;
  }

let pp fmt r =
  Format.fprintf fmt
    "%s: n=%d load=%.0ftps committed=%d (%.0f tps) latency p50=%.0fms [p25=%.0f p75=%.0f] \
     commits fast/direct/indirect=%d/%d/%d skipped=%d"
    r.name r.n r.load_tps r.committed r.committed_tps r.latency_p50 r.latency_p25 r.latency_p75
    r.fast_commits r.direct_commits r.indirect_commits r.skipped_anchors

let table_header =
  [ "system"; "load(tps)"; "committed(tps)"; "p25(ms)"; "p50(ms)"; "p75(ms)"; "mean(ms)" ]

let table_row r =
  [
    r.name;
    Printf.sprintf "%.0f" r.load_tps;
    Printf.sprintf "%.0f" r.committed_tps;
    Tablefmt.float_cell ~decimals:0 r.latency_p25;
    Tablefmt.float_cell ~decimals:0 r.latency_p50;
    Tablefmt.float_cell ~decimals:0 r.latency_p75;
    Tablefmt.float_cell ~decimals:0 r.latency_mean;
  ]
