lib/runtime/report.ml: Format Metrics Printf Shoalpp_support
