lib/runtime/metrics.ml: List Shoalpp_support Shoalpp_workload
