lib/runtime/experiment.mli: Report Shoalpp_core Shoalpp_sim
