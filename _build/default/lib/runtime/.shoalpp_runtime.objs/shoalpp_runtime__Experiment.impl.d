lib/runtime/experiment.ml: Array Cluster Fun Hashtbl List Metrics Option Printf Report Shoalpp_consensus Shoalpp_core Shoalpp_dag Shoalpp_sim Shoalpp_workload
