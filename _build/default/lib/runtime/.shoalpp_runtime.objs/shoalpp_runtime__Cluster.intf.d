lib/runtime/cluster.mli: Format Metrics Report Shoalpp_core Shoalpp_sim
