lib/runtime/report.mli: Format Metrics
