lib/runtime/metrics.mli: Shoalpp_support Shoalpp_workload
