lib/runtime/cluster.ml: Array Hashtbl List Metrics Report Shoalpp_consensus Shoalpp_core Shoalpp_dag Shoalpp_sim Shoalpp_workload
