(** Uniform result record for all systems (Shoal++ family and baselines), so
    figure harnesses can tabulate them side by side. *)

type t = {
  name : string;
  n : int;
  load_tps : float;
  duration_ms : float;
  submitted : int;
  committed : int;
  committed_tps : float;
  latency_p25 : float;
  latency_p50 : float;
  latency_p75 : float;
  latency_mean : float;
  fast_commits : int;
  direct_commits : int;
  indirect_commits : int;
  skipped_anchors : int;
  messages_sent : int;
  messages_dropped : int;
  bytes_sent : float;
}

val make :
  name:string ->
  n:int ->
  load_tps:float ->
  duration_ms:float ->
  submitted:int ->
  metrics:Metrics.t ->
  ?fast_commits:int ->
  ?direct_commits:int ->
  ?indirect_commits:int ->
  ?skipped_anchors:int ->
  messages_sent:int ->
  messages_dropped:int ->
  bytes_sent:float ->
  unit ->
  t

val pp : Format.formatter -> t -> unit

val table_header : string list
val table_row : t -> string list
(** For {!Shoalpp_support.Tablefmt}. *)
