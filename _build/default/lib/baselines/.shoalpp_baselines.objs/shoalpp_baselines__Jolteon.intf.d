lib/baselines/jolteon.mli: Shoalpp_dag Shoalpp_runtime Shoalpp_sim
