lib/baselines/register.ml: Fun Jolteon List Mysticeti Option Shoalpp_dag Shoalpp_runtime Shoalpp_sim
