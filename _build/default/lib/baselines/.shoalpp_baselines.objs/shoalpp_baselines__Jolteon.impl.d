lib/baselines/jolteon.ml: Array Hashtbl List Printf Queue Shoalpp_crypto Shoalpp_dag Shoalpp_runtime Shoalpp_sim Shoalpp_support Shoalpp_workload String
