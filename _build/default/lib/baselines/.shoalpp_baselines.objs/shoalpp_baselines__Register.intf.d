lib/baselines/register.mli:
