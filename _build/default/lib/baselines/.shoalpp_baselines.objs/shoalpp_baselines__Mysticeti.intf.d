lib/baselines/mysticeti.mli: Shoalpp_dag Shoalpp_runtime Shoalpp_sim
