(** Plugs the Jolteon and Mysticeti runners into
    {!Shoalpp_runtime.Experiment}'s registry. Call once at program start;
    idempotent. *)

val register : unit -> unit
