lib/storage/kvstore.mli: Shoalpp_crypto
