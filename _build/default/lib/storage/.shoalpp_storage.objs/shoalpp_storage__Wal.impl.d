lib/storage/wal.ml: List Shoalpp_sim
