lib/storage/kvstore.ml: Hashtbl Shoalpp_crypto
