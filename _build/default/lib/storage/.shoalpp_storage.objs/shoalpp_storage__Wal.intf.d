lib/storage/wal.mli: Shoalpp_sim
