module Engine = Shoalpp_sim.Engine

type pending = { cb : unit -> unit }

type t = {
  engine : Engine.t;
  sync_latency_ms : float;
  group_commit : bool;
  mutable device_busy : bool;
  mutable queue : pending list; (* reversed arrival order *)
  mutable appends : int;
  mutable syncs : int;
  mutable bytes : float;
}

let create ~engine ~sync_latency_ms ?(group_commit = true) () =
  {
    engine;
    sync_latency_ms;
    group_commit;
    device_busy = false;
    queue = [];
    appends = 0;
    syncs = 0;
    bytes = 0.0;
  }

let rec start_sync t =
  match t.queue with
  | [] -> t.device_busy <- false
  | pending ->
    t.device_busy <- true;
    (* Group commit: one sync covers everything queued right now. *)
    let batch = if t.group_commit then List.rev pending else [ List.hd (List.rev pending) ] in
    t.queue <- (if t.group_commit then [] else List.rev (List.tl (List.rev pending)));
    t.syncs <- t.syncs + 1;
    ignore
      (Engine.schedule t.engine ~after:t.sync_latency_ms (fun () ->
           List.iter (fun p -> p.cb ()) batch;
           start_sync t))

let append t ~size cb =
  t.appends <- t.appends + 1;
  t.bytes <- t.bytes +. float_of_int size;
  t.queue <- { cb } :: t.queue;
  if not t.device_busy then start_sync t

let appends t = t.appends
let syncs t = t.syncs
let bytes_written t = t.bytes
