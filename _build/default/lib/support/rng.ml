type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let ( +% ) = Int64.add
let ( *% ) = Int64.mul
let ( ^% ) = Int64.logxor

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* SplitMix64: used only to expand a seed into xoshiro state. *)
let splitmix64 state =
  state := !state +% 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = (z ^% Int64.shift_right_logical z 30) *% 0xBF58476D1CE4E5B9L in
  let z = (z ^% Int64.shift_right_logical z 27) *% 0x94D049BB133111EBL in
  z ^% Int64.shift_right_logical z 31

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let bits64 t =
  let result = rotl (t.s0 +% t.s3) 23 +% t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- t.s2 ^% t.s0;
  t.s3 <- t.s3 ^% t.s1;
  t.s1 <- t.s1 ^% t.s2;
  t.s0 <- t.s0 ^% t.s3;
  t.s2 <- t.s2 ^% tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) land max_int in
  create seed

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let nonneg t = Int64.to_int (bits64 t) land max_int

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  nonneg t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

(* 53 uniformly random mantissa bits. *)
let unit_float t =
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bits *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound
let float_in t lo hi = lo +. (unit_float t *. (hi -. lo))
let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = unit_float t < p

let exponential t mean =
  let u = 1.0 -. unit_float t in
  -.mean *. log u

let normal t ~mu ~sigma =
  let u1 = 1.0 -. unit_float t in
  let u2 = unit_float t in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let poisson t lambda =
  let ell = exp (-.lambda) in
  let rec loop k p =
    let p = p *. unit_float t in
    if p <= ell then k else loop (k + 1) p
  in
  loop 0 1.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let sample_without_replacement t k n =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  Array.to_list (Array.sub arr 0 k)
