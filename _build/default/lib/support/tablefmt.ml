type align = Left | Right

let float_cell ?(decimals = 1) v =
  if Float.is_nan v then "-" else Printf.sprintf "%.*f" decimals v

let render ?align ~header rows =
  let ncols = List.length header in
  let pad_row row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map pad_row rows in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> a
    | _ -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row -> List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell) row)
    rows;
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        let w = widths.(i) in
        let pad = w - String.length cell in
        if i > 0 then Buffer.add_string buf "  ";
        (match List.nth aligns i with
        | Left ->
          Buffer.add_string buf cell;
          if i < ncols - 1 then Buffer.add_string buf (String.make pad ' ')
        | Right ->
          Buffer.add_string buf (String.make pad ' ');
          Buffer.add_string buf cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  let sep = List.mapi (fun i _ -> String.make widths.(i) '-') header in
  emit_row sep;
  List.iter emit_row rows;
  Buffer.contents buf

let print ?align ~header rows = print_string (render ?align ~header rows)
