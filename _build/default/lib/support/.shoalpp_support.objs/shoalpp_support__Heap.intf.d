lib/support/heap.mli:
