lib/support/rng.mli:
