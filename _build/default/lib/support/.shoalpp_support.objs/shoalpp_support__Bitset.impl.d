lib/support/bitset.ml: Array Format List
