lib/support/varint.mli: Buffer
