lib/support/tablefmt.mli:
