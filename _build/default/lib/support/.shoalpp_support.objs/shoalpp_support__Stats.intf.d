lib/support/stats.mli:
