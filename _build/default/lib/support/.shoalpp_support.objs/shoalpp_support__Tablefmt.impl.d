lib/support/tablefmt.ml: Array Buffer Float List Printf String
