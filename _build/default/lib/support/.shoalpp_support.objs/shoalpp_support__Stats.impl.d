lib/support/stats.ml: Array Hashtbl List Rng Stdlib
