lib/support/varint.ml: Buffer Char String
