let encoded_size v =
  if v < 0 then invalid_arg "Varint.encoded_size: negative";
  let rec go v n = if v < 0x80 then n else go (v lsr 7) (n + 1) in
  go v 1

let write buf v =
  if v < 0 then invalid_arg "Varint.write: negative";
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

let read s pos =
  let len = String.length s in
  let rec go pos shift acc =
    if pos >= len then failwith "Varint.read: truncated input";
    if shift > 62 then failwith "Varint.read: varint too large";
    let b = Char.code s.[pos] in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0
