type t = { cap : int; words : int array }

let words_for cap = (cap + 62) / 63

let create cap =
  if cap < 0 then invalid_arg "Bitset.create";
  { cap; words = Array.make (words_for cap) 0 }

let capacity t = t.cap

let check t i =
  if i < 0 || i >= t.cap then invalid_arg "Bitset: index out of range"

let set t i =
  check t i;
  t.words.(i / 63) <- t.words.(i / 63) lor (1 lsl (i mod 63))

let clear_bit t i =
  check t i;
  t.words.(i / 63) <- t.words.(i / 63) land lnot (1 lsl (i mod 63))

let mem t i =
  check t i;
  t.words.(i / 63) land (1 lsl (i mod 63)) <> 0

let popcount_word w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let count t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let binop op a b =
  if a.cap <> b.cap then invalid_arg "Bitset: capacity mismatch";
  { cap = a.cap; words = Array.init (Array.length a.words) (fun i -> op a.words.(i) b.words.(i)) }

let union a b = binop ( lor ) a b
let inter a b = binop ( land ) a b
let copy t = { cap = t.cap; words = Array.copy t.words }

let iter f t =
  for i = 0 to t.cap - 1 do
    if t.words.(i / 63) land (1 lsl (i mod 63)) <> 0 then f i
  done

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let of_list cap l =
  let t = create cap in
  List.iter (set t) l;
  t

let equal a b = a.cap = b.cap && a.words = b.words

let pp fmt t =
  Format.fprintf fmt "{%a}" (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",") Format.pp_print_int) (to_list t)
