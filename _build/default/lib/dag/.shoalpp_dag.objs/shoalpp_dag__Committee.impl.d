lib/dag/committee.ml: Format Printf Shoalpp_crypto
