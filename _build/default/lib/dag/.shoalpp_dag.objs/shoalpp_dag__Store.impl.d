lib/dag/store.ml: Array Fun Hashtbl List Option Shoalpp_crypto Types
