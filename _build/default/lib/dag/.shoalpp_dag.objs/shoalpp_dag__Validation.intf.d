lib/dag/validation.mli: Committee Types
