lib/dag/committee.mli: Format Shoalpp_crypto
