lib/dag/instance.mli: Committee Shoalpp_sim Shoalpp_workload Store Types
