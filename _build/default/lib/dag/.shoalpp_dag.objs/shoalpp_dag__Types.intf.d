lib/dag/types.mli: Format Shoalpp_crypto Shoalpp_workload
