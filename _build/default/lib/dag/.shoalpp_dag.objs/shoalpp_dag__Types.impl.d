lib/dag/types.ml: Format List Printf Shoalpp_codec Shoalpp_crypto Shoalpp_support Shoalpp_workload
