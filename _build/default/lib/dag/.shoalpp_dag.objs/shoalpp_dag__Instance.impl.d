lib/dag/instance.ml: Committee Fun Hashtbl List Option Shoalpp_crypto Shoalpp_sim Shoalpp_storage Shoalpp_support Shoalpp_workload Store Types Validation
