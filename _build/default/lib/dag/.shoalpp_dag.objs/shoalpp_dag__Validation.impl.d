lib/dag/validation.ml: Committee Hashtbl List Printf Result Shoalpp_crypto Shoalpp_workload Types
