lib/dag/store.mli: Shoalpp_crypto Types
