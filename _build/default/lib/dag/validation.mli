(** Structural and cryptographic validation of DAG messages.

    Everything a correct replica checks before acting on a message; invalid
    messages are treated as Byzantine and dropped. Signature checks can be
    switched off globally for large benchmark runs (the simulated scheme's
    cost is then still modeled by the network CPU model), but all tests run
    with them on. *)

val validate_proposal :
  committee:Committee.t -> verify_signatures:bool -> Types.node -> (unit, string) result
(** Checks: author in range, round >= 0, parents structure — round 0 nodes
    have no parents, later rounds have >= n-f parents, all from round-1 with
    distinct valid authors —, digest binds content, author signature. *)

val validate_vote :
  committee:Committee.t -> verify_signatures:bool -> Types.vote -> (unit, string) result

val validate_certificate :
  committee:Committee.t -> verify_signatures:bool -> Types.certificate -> (unit, string) result
(** Checks: >= n-f distinct signers and multisig validity over the vote
    preimage. *)

val validate_certified_node :
  committee:Committee.t -> verify_signatures:bool -> Types.certified_node -> (unit, string) result
(** Node and certificate valid, and the certificate matches the node. *)
