module Digest32 = Shoalpp_crypto.Digest32
module Signer = Shoalpp_crypto.Signer

type t = { n : int; f : int; cluster_seed : int; genesis : Digest32.t }

let make ~n ?(cluster_seed = 0) () =
  if n < 4 then invalid_arg "Committee.make: need n >= 4";
  let f = (n - 1) / 3 in
  let genesis = Digest32.of_string (Printf.sprintf "genesis/%d/%d" n cluster_seed) in
  { n; f; cluster_seed; genesis }

let quorum t = t.n - t.f
let weak_quorum t = t.f + 1
let fast_quorum t = (2 * t.f) + 1
let keypair t replica = Signer.keygen ~cluster_seed:t.cluster_seed ~replica
let valid_replica t r = r >= 0 && r < t.n
let pp fmt t = Format.fprintf fmt "committee(n=%d,f=%d)" t.n t.f
