lib/crypto/merkle.mli: Digest32
