lib/crypto/signer.mli: Format
