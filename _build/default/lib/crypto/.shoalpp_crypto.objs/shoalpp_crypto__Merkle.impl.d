lib/crypto/merkle.ml: Array Digest32 List
