lib/crypto/digest32.ml: Char Format Sha256 String
