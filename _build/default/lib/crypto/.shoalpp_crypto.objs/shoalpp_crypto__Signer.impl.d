lib/crypto/signer.ml: Format Printf Sha256 String
