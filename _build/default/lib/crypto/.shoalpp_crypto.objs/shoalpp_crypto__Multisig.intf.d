lib/crypto/multisig.mli: Format Shoalpp_support Signer
