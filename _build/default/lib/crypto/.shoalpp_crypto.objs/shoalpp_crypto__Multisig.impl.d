lib/crypto/multisig.ml: Format List Sha256 Shoalpp_support Signer String
