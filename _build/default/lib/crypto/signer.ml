type public = int
type keypair = { pub : public; secret : string }
type signature = string

let secret_for ~cluster_seed ~replica =
  Sha256.digest_string (Printf.sprintf "shoalpp-secret-%d-%d" cluster_seed replica)

let keygen ~cluster_seed ~replica = { pub = replica; secret = secret_for ~cluster_seed ~replica }
let public kp = kp.pub
let sign kp msg = Sha256.hmac ~key:kp.secret msg

let verify ~cluster_seed pub msg signature =
  let secret = secret_for ~cluster_seed ~replica:pub in
  String.equal (Sha256.hmac ~key:secret msg) signature

let signature_size = 48
let raw s = s

let of_raw s =
  if String.length s <> 32 then invalid_arg "Signer.of_raw: need 32 bytes";
  s
let pp fmt s = Format.pp_print_string fmt (String.sub (Sha256.to_hex s) 0 8)
