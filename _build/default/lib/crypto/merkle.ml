type t = { levels : Digest32.t array array; nleaves : int }
(* levels.(0) = leaves (padded to even sizes as we ascend); last level is the
   root. Odd nodes are paired with themselves, the classic duplication rule. *)

let combine a b = Digest32.concat [ a; b ]

let of_leaves leaves =
  let nleaves = List.length leaves in
  if nleaves = 0 then { levels = [| [| Digest32.zero |] |]; nleaves = 0 }
  else begin
    let rec build acc level =
      if Array.length level <= 1 then List.rev (level :: acc)
      else begin
        let n = Array.length level in
        let next =
          Array.init ((n + 1) / 2) (fun i ->
              let l = level.(2 * i) in
              let r = if (2 * i) + 1 < n then level.((2 * i) + 1) else l in
              combine l r)
        in
        build (level :: acc) next
      end
    in
    { levels = Array.of_list (build [] (Array.of_list leaves)); nleaves }
  end

let root t =
  let top = t.levels.(Array.length t.levels - 1) in
  top.(0)

let size t = t.nleaves

type proof = Digest32.t list

let prove t index =
  if index < 0 || index >= t.nleaves then invalid_arg "Merkle.prove: index out of range";
  let acc = ref [] in
  let idx = ref index in
  for lvl = 0 to Array.length t.levels - 2 do
    let level = t.levels.(lvl) in
    let sib = if !idx land 1 = 0 then !idx + 1 else !idx - 1 in
    let sib_digest = if sib < Array.length level then level.(sib) else level.(!idx) in
    acc := sib_digest :: !acc;
    idx := !idx / 2
  done;
  List.rev !acc

let verify_proof ~root ~leaf ~index ~size proof =
  if index < 0 || index >= size then false
  else begin
    let rec go current idx = function
      | [] -> Digest32.equal current root
      | sib :: rest ->
        let next = if idx land 1 = 0 then combine current sib else combine sib current in
        go next (idx / 2) rest
    in
    go leaf index proof
  end
