module Bitset = Shoalpp_support.Bitset

type t = { mask : Bitset.t; combined : string }

let combine sigs =
  let ctx = Sha256.init () in
  List.iter (fun s -> Sha256.feed_string ctx (Signer.raw s)) sigs;
  Sha256.finalize ctx

let aggregate ~n sigs =
  let mask = Bitset.create n in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) sigs in
  List.iter
    (fun (pub, _) ->
      if pub < 0 || pub >= n then invalid_arg "Multisig.aggregate: signer out of range";
      if Bitset.mem mask pub then invalid_arg "Multisig.aggregate: duplicate signer";
      Bitset.set mask pub)
    sorted;
  { mask; combined = combine (List.map snd sorted) }

let signers t = Bitset.copy t.mask
let num_signers t = Bitset.count t.mask

let verify ~cluster_seed t msg =
  (* Recompute what each signer's signature must be (the registry is public
     within the simulation) and check the combined hash. *)
  let expected = ref [] in
  Bitset.iter
    (fun pub ->
      let kp = Signer.keygen ~cluster_seed ~replica:pub in
      expected := Signer.sign kp msg :: !expected)
    t.mask;
  String.equal (combine (List.rev !expected)) t.combined

let wire_size t = 48 + ((Bitset.capacity t.mask + 7) / 8)

let pp fmt t = Format.fprintf fmt "multisig%a" Bitset.pp t.mask
