type t = string

let of_raw s =
  if String.length s <> 32 then invalid_arg "Digest32.of_raw: need 32 bytes";
  s

let of_string s = Sha256.digest_string s
let concat ds = Sha256.digest_string (String.concat "" ds)
let raw t = t
let hex = Sha256.to_hex
let short_hex t = String.sub (hex t) 0 8
let equal = String.equal
let compare = String.compare

let hash t =
  (* First 62 bits of the digest, already uniform. *)
  let v = ref 0 in
  for i = 0 to 6 do
    v := (!v lsl 8) lor Char.code t.[i]
  done;
  !v land max_int

let pp fmt t = Format.pp_print_string fmt (short_hex t)
let zero = String.make 32 '\000'
