type mode = Every_other_round | One_per_round | All_eligible

let head = function [] -> [] | x :: _ -> [ x ]

let candidates mode reputation ~round =
  if round <= 0 then []
  else begin
    match mode with
    | Every_other_round ->
      if round mod 2 = 1 then head (Reputation.eligible reputation ~round ~slot:((round - 1) / 2))
      else []
    | One_per_round -> head (Reputation.eligible reputation ~round ~slot:round)
    | All_eligible -> Reputation.eligible reputation ~round ~slot:round
  end

let instance_anchor reputation ~round =
  match Reputation.eligible reputation ~round ~slot:round with
  | a :: _ -> a
  | [] -> 0 (* unreachable: eligible never returns empty for n >= 1 *)

let pp_mode fmt = function
  | Every_other_round -> Format.pp_print_string fmt "every-other-round"
  | One_per_round -> Format.pp_print_string fmt "one-per-round"
  | All_eligible -> Format.pp_print_string fmt "all-eligible"
