(** Leader (anchor) reputation, after Shoal / Carousel.

    The scheme must be a deterministic function of the committed prefix so
    that every correct replica computes the same eligible-anchor vectors
    (Property 3 of the paper). It is fed exactly the ordered segments, in
    order, and scores each author by how often it {e supports} committed
    anchors: an author earns credit when it is the anchor itself or the
    author of one of the anchor's strong parents (the nodes whose references
    commit the anchor). Well-connected, fast replicas are supporters nearly
    every segment; stragglers — whose nodes only enter histories late, via
    weak edges — earn nothing and drop out of the eligible vector until they
    become prompt again.

    With reputation disabled the vector is the plain round-robin rotation
    over all n authors — Bullshark's behaviour, which is what makes it
    suffer under crash faults (Fig 7). *)

type t

val create : n:int -> ?window:int -> ?staleness:int -> enabled:bool -> unit -> t
(** [window] = number of recent segments scored (default 64); [staleness] =
    rounds without supporting any anchor before exclusion (default 8). *)

val observe_segment :
  t -> anchor_round:int -> supporters:int list -> node_positions:(int * int) list -> unit
(** Feed one ordered segment, in commit order. [supporters] = the anchor's
    author plus the authors of its strong parents; [node_positions] = the
    (round, author) of every node the segment ordered (activity tracking). *)

val eligible : t -> round:int -> slot:int -> int list
(** Deterministic candidate vector for a round. [slot] drives round-robin
    rotation (callers pass the anchor-opportunity index, e.g. the round
    number, or round/2 for every-other-round schedules).

    Enabled: recently-supporting authors sorted by support score (desc, ties
    rotated by slot). Disabled: all n authors rotated by slot. Never empty —
    before any segment is observed, or if every author went stale, falls
    back to all authors. *)

val score : t -> int -> int
val is_active : t -> round:int -> int -> bool
val last_ordered_round : t -> int -> int
(** -1 if never ordered. *)
