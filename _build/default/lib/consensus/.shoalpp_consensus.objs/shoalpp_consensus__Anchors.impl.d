lib/consensus/anchors.ml: Format Reputation
