lib/consensus/driver.mli: Anchors Reputation Shoalpp_dag
