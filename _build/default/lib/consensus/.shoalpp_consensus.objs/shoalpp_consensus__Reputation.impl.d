lib/consensus/reputation.ml: Array Fun List Queue
