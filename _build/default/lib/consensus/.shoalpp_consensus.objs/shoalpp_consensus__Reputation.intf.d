lib/consensus/reputation.mli:
