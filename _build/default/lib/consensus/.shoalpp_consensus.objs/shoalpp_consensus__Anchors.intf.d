lib/consensus/anchors.mli: Format Reputation
