lib/consensus/driver.ml: Anchors Hashtbl List Option Reputation Shoalpp_crypto Shoalpp_dag
