#!/bin/sh
# Dynamic race smoke: when the active OCaml toolchain was built with
# ThreadSanitizer (5.2+ configured --enable-tsan; `ocamlopt -config`
# reports `tsan: true`), drive the multicore node at --domains 4 and fail
# on any TSan data-race report. This is the dynamic complement to
# shoalpp_lint's static race pass: the linter proves the ownership
# discipline is followed, TSan catches whatever the discipline missed.
#
# On a non-TSan toolchain (the default dev image ships 5.1.x) this skips
# cleanly with a notice — the static pass still gates in check.sh.
set -eu
cd "$(dirname "$0")/.."

if ! ocamlopt -config 2>/dev/null | grep -q '^tsan: *true'; then
  echo "tsan: toolchain built without ThreadSanitizer (ocamlopt -config lacks 'tsan: true'), skipping dynamic race smoke"
  exit 0
fi

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

dune build bin/shoalpp_node.exe

# TSAN_OPTIONS: halt_on_error makes the first report fatal so the exit
# code carries the verdict; keep history large enough for 4 domains + the
# verify pool.
TSAN_OPTIONS="halt_on_error=1 history_size=7 ${TSAN_OPTIONS:-}" \
  ./_build/default/bin/shoalpp_node.exe \
  -n 4 --duration 4000 --load 300 --domains 4 \
  > "$out/tsan.out" 2>&1 \
  || { echo "tsan: multicore drill failed (data race or crash)" >&2; cat "$out/tsan.out" >&2; exit 1; }

if grep -q 'WARNING: ThreadSanitizer' "$out/tsan.out"; then
  echo "tsan: data race reported" >&2
  cat "$out/tsan.out" >&2
  exit 1
fi
grep -q 'audit: consistent logs, no duplicates' "$out/tsan.out" \
  || { echo "tsan: audit line missing from drill output" >&2; cat "$out/tsan.out" >&2; exit 1; }

echo "tsan: --domains 4 drill clean under ThreadSanitizer"
