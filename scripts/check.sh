#!/bin/sh
# CI check: build, run the full test suite, then smoke-test the simulator's
# observability exports end to end. One command, non-zero exit on any failure.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest

# odoc is optional in the dev image; when present, the rendered docs must
# build cleanly (every .mli carries a doc comment the build will parse).
if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "check: odoc not installed, skipping dune build @doc"
fi

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

dune exec bin/shoalpp_sim.exe -- \
  -n 4 --topology clique:4,15 --load 200 --duration 4000 --warmup 500 \
  --trace-out "$out/run.jsonl" \
  --chrome-out "$out/run.trace.json" \
  --metrics-out "$out/run.metrics.json"

# The exports must exist and be non-empty; the JSONL must look like events.
for f in run.jsonl run.trace.json run.metrics.json; do
  test -s "$out/$f" || { echo "check failed: $f missing or empty" >&2; exit 1; }
done
grep -q '"tag":"proposal_created"' "$out/run.jsonl" \
  || { echo "check failed: no proposal events in trace" >&2; exit 1; }
grep -q '"traceEvents"' "$out/run.trace.json" \
  || { echo "check failed: chrome trace malformed" >&2; exit 1; }
grep -q '"commit.fast_direct"' "$out/run.metrics.json" \
  || { echo "check failed: commit-rule counters missing from metrics" >&2; exit 1; }

# Fault-scenario smoke: a crash-recover run must stay safe (the sim exits
# non-zero on a failed audit) and record the injected faults in telemetry.
dune exec bin/shoalpp_sim.exe -- \
  -n 4 --topology clique:4,15 --load 200 --duration 10000 --warmup 500 \
  --scenario crash-recover:at=3000,recover=6000 --no-verify \
  --metrics-out "$out/faults.metrics.json"
grep -q '"fault.recoveries"' "$out/faults.metrics.json" \
  || { echo "check failed: fault counters missing from scenario metrics" >&2; exit 1; }

# Perf-harness smoke: a shortened sweep must finish inside a generous
# ceiling and emit well-formed BENCH_perf.json (all audits passing). No
# assertions on absolute wall times — those would make CI flaky.
BENCH_DURATION_S=2 BENCH_PERF_OUT="$out/perf.json" \
  timeout 600 ./_build/default/bench/main.exe perf >/dev/null \
  || { echo "check failed: perf sweep did not complete" >&2; exit 1; }
test -s "$out/perf.json" || { echo "check failed: BENCH_perf.json missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$out/perf.json" <<'EOF' || { echo "check failed: BENCH_perf.json malformed" >&2; exit 1; }
import json, sys
d = json.load(open(sys.argv[1]))
runs = d["runs"]
assert len(runs) == 6, f"expected 6 runs, got {len(runs)}"
for r in runs:
    assert r["audit_ok"] is True, f"audit failed for n={r['n']} {r['topology']}"
    assert r["wall_ms"] > 0 and r["events_fired"] > 0 and r["committed"] > 0
EOF
else
  grep -q '"audit_ok":true' "$out/perf.json" \
    || { echo "check failed: BENCH_perf.json has no passing audit" >&2; exit 1; }
fi

echo "check: build + tests + docs + observability/scenario + perf smoke OK"
