#!/bin/sh
# CI check: build, run the full test suite, then smoke-test the simulator's
# observability exports end to end. One command, non-zero exit on any failure.
set -eu
cd "$(dirname "$0")/.."

dune build

# Determinism & layering lint (tools/lint): effect confinement to the
# sans-I/O backend, sorted iteration on emission paths, monomorphic
# comparisons on protocol keys, interface hygiene. Fail fast, before tests:
# a seam violation invalidates what the tests claim to guarantee.
dune build @lint

dune runtest

# odoc is optional in the dev image; when present, the rendered docs must
# build cleanly (every .mli carries a doc comment the build will parse).
if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "check: odoc not installed, skipping dune build @doc"
fi

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

dune exec bin/shoalpp_sim.exe -- \
  -n 4 --topology clique:4,15 --load 200 --duration 4000 --warmup 500 \
  --trace-out "$out/run.jsonl" \
  --chrome-out "$out/run.trace.json" \
  --metrics-out "$out/run.metrics.json"

# The exports must exist and be non-empty; the JSONL must look like events.
for f in run.jsonl run.trace.json run.metrics.json; do
  test -s "$out/$f" || { echo "check failed: $f missing or empty" >&2; exit 1; }
done
grep -q '"tag":"proposal_created"' "$out/run.jsonl" \
  || { echo "check failed: no proposal events in trace" >&2; exit 1; }
grep -q '"traceEvents"' "$out/run.trace.json" \
  || { echo "check failed: chrome trace malformed" >&2; exit 1; }
grep -q '"commit.fast_direct"' "$out/run.metrics.json" \
  || { echo "check failed: commit-rule counters missing from metrics" >&2; exit 1; }

# Fault-scenario smoke: a crash-recover run must stay safe (the sim exits
# non-zero on a failed audit) and record the injected faults in telemetry.
dune exec bin/shoalpp_sim.exe -- \
  -n 4 --topology clique:4,15 --load 200 --duration 10000 --warmup 500 \
  --scenario crash-recover:at=3000,recover=6000 --no-verify \
  --metrics-out "$out/faults.metrics.json"
grep -q '"fault.recoveries"' "$out/faults.metrics.json" \
  || { echo "check failed: fault counters missing from scenario metrics" >&2; exit 1; }

# Real-time node smoke: the same replicas on a wall clock (sans-I/O seam).
# ~2 s of wall time, 4 replicas over loopback; the binary exits non-zero if
# the safety audit fails, and the audit line must show committed segments
# on every DAG lane.
dune exec bin/shoalpp_node.exe -- \
  -n 4 --duration 2000 --load 200 --no-verify \
  --trace-out "$out/node.jsonl" --metrics-out "$out/node.metrics.json" \
  | tee "$out/node.out"
grep -q 'audit: consistent logs, no duplicates' "$out/node.out" \
  || { echo "check failed: node audit line missing" >&2; exit 1; }
if grep -q 'audit: consistent logs, no duplicates; 0 segments' "$out/node.out"; then
  echo "check failed: node committed no segments" >&2; exit 1
fi
grep -Eq 'lanes [1-9][0-9]*,[1-9][0-9]*,[1-9][0-9]*' "$out/node.out" \
  || { echo "check failed: a DAG lane committed no anchors" >&2; exit 1; }
for f in node.jsonl node.metrics.json; do
  test -s "$out/$f" || { echo "check failed: $f missing or empty" >&2; exit 1; }
done

# Perf re-run guard: the full sweep (same durations as the committed
# BENCH_perf.json) must finish inside a generous ceiling with all audits
# passing, and the n=50 gcp10 run is held to within 10% of the committed
# baseline on the machine-independent axes — byte-identical behaviour
# (same events fired, same commits) and allocated words per run. Raw
# wall-clock/events-per-second are reported but not asserted: they track
# the CI machine's load as much as the code (the committed code itself
# misses its own committed ev/s numbers on a throttled machine).
BENCH_PERF_OUT="$out/perf.json" \
  timeout 600 ./_build/default/bench/main.exe perf >/dev/null \
  || { echo "check failed: perf sweep did not complete" >&2; exit 1; }
test -s "$out/perf.json" || { echo "check failed: BENCH_perf.json missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$out/perf.json" BENCH_perf.json <<'EOF' || { echo "check failed: BENCH_perf.json malformed or regressed" >&2; exit 1; }
import json, sys
d = json.load(open(sys.argv[1]))
runs = d["runs"]
assert len(runs) == 6, f"expected 6 runs, got {len(runs)}"
for r in runs:
    assert r["audit_ok"] is True, f"audit failed for n={r['n']} {r['topology']}"
    assert r["wall_ms"] > 0 and r["events_fired"] > 0 and r["committed"] > 0
committed = json.load(open(sys.argv[2]))
pick = lambda rs: next(r for r in rs if r["n"] == 50 and r["topology"] == "gcp10")
fresh, base = pick(runs), pick(committed["runs"])
assert fresh["events_fired"] == base["events_fired"], (
    f"n=50 gcp10 behaviour changed: {fresh['events_fired']} events vs "
    f"committed {base['events_fired']}")
assert fresh["committed"] == base["committed"], (
    f"n=50 gcp10 behaviour changed: {fresh['committed']} commits vs "
    f"committed {base['committed']}")
alloc = fresh["allocated_words"] / base["allocated_words"]
assert alloc <= 1.10, (
    f"n=50 gcp10 regressed: {fresh['allocated_words']} allocated words vs "
    f"committed {base['allocated_words']} (ratio {alloc:.2f} > 1.10)")
print(f"perf guard: n=50 gcp10 behaviour identical, {alloc:.2f}x committed allocations, "
      f"{fresh['events_per_sec'] / base['events_per_sec']:.2f}x committed ev/s (informational)")
EOF
else
  grep -q '"audit_ok":true' "$out/perf.json" \
    || { echo "check failed: BENCH_perf.json has no passing audit" >&2; exit 1; }
fi

echo "check: build + tests + docs + observability/scenario + node + perf smoke OK"
