#!/bin/sh
# CI check: build, run the full test suite, then smoke-test the simulator's
# observability exports end to end. One command, non-zero exit on any failure.
set -eu
cd "$(dirname "$0")/.."

dune build

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

# Determinism & layering lint (tools/lint): effect confinement to the
# sans-I/O backend, sorted iteration on emission paths, monomorphic
# comparisons on protocol keys, interface hygiene. Fail fast, before tests:
# a seam violation invalidates what the tests claim to guarantee.
dune build @lint

# Race-pass gate: the domain-ownership rules of docs/CONCURRENCY.md must
# hold with zero diagnostics, checked over the machine-readable output so
# a malformed JSON emitter cannot hide a finding. (@lint already fails on
# ANY diagnostic; this re-run pins the four concurrency rules and the
# JSON field contract specifically.)
./_build/default/tools/lint/shoalpp_lint.exe --format=json \
  lib bin bench tools/trace > "$out/lint.json"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$out/lint.json" <<'EOF' || { echo "check failed: race-pass lint gate" >&2; cat "$out/lint.json" >&2; exit 1; }
import json, sys
diags = json.load(open(sys.argv[1]))
assert isinstance(diags, list), "lint JSON is not an array"
race_rules = {"domain-ownership", "shared-mutable-state", "lock-discipline", "cross-domain-effect"}
for d in diags:
    for field in ("file", "rule", "severity", "message"):
        assert isinstance(d.get(field), str), f"diagnostic missing {field}: {d}"
    for field in ("line", "col"):
        assert isinstance(d.get(field), int), f"diagnostic missing {field}: {d}"
race = [d for d in diags if d["rule"] in race_rules]
assert not race, "race-pass diagnostics:\n" + "\n".join(
    f"{d['file']}:{d['line']}:{d['col']}: [{d['rule']}] {d['message']}" for d in race)
print(f"race gate: 0 concurrency diagnostics ({len(diags)} total) across lib/ bin/ bench/ tools/trace/")
EOF
else
  grep -q '"rule":"\(domain-ownership\|shared-mutable-state\|lock-discipline\|cross-domain-effect\)"' \
    "$out/lint.json" && { echo "check failed: race-pass diagnostics present" >&2; cat "$out/lint.json" >&2; exit 1; }
  echo "check: python3 not installed, race gate checked by grep only"
fi

# Dynamic complement to the static race pass: under an OCaml 5.x TSan
# switch this drives the --domains 4 node and fails on any data-race
# report; on a non-TSan toolchain it skips with a notice.
sh scripts/tsan.sh

dune runtest

# odoc is optional in the dev image; when present, the rendered docs must
# build cleanly (every .mli carries a doc comment the build will parse).
if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "check: odoc not installed, skipping dune build @doc"
fi

dune exec bin/shoalpp_sim.exe -- \
  -n 4 --topology clique:4,15 --load 200 --duration 4000 --warmup 500 \
  --trace-out "$out/run.jsonl" \
  --chrome-out "$out/run.trace.json" \
  --metrics-out "$out/run.metrics.json"

# The exports must exist and be non-empty; the JSONL must look like events.
for f in run.jsonl run.trace.json run.metrics.json; do
  test -s "$out/$f" || { echo "check failed: $f missing or empty" >&2; exit 1; }
done
grep -q '"tag":"proposal_created"' "$out/run.jsonl" \
  || { echo "check failed: no proposal events in trace" >&2; exit 1; }
grep -q '"traceEvents"' "$out/run.trace.json" \
  || { echo "check failed: chrome trace malformed" >&2; exit 1; }
grep -q '"commit.fast_direct"' "$out/run.metrics.json" \
  || { echo "check failed: commit-rule counters missing from metrics" >&2; exit 1; }

# Fault-scenario smoke: a crash-recover run must stay safe (the sim exits
# non-zero on a failed audit) and record the injected faults in telemetry.
dune exec bin/shoalpp_sim.exe -- \
  -n 4 --topology clique:4,15 --load 200 --duration 10000 --warmup 500 \
  --scenario crash-recover:at=3000,recover=6000 --no-verify \
  --metrics-out "$out/faults.metrics.json"
grep -q '"fault.recoveries"' "$out/faults.metrics.json" \
  || { echo "check failed: fault counters missing from scenario metrics" >&2; exit 1; }

# Real-time node smoke: the same replicas on a wall clock (sans-I/O seam),
# run in the background with the live admin plane up so /health and
# /metrics are scraped MID-RUN — the endpoint must serve while consensus is
# running, not just at shutdown. The binary exits non-zero if the safety
# audit fails, and the audit line must show committed segments on every
# DAG lane.
./_build/default/bin/shoalpp_node.exe \
  -n 4 --duration 5000 --load 200 --no-verify --admin-port 0 \
  --trace-out "$out/node.jsonl" --metrics-out "$out/node.metrics.json" \
  > "$out/node.out" 2>&1 &
node_pid=$!
admin_port=""
i=0
while [ $i -lt 50 ]; do
  admin_port=$(sed -n 's#^admin: http://127\.0\.0\.1:\([0-9]*\)/metrics.*#\1#p' "$out/node.out")
  [ -n "$admin_port" ] && break
  i=$((i + 1)); sleep 0.1
done
if [ -z "$admin_port" ]; then
  kill "$node_pid" 2>/dev/null || true
  echo "check failed: admin endpoint never announced itself" >&2; exit 1
fi
if command -v python3 >/dev/null 2>&1; then
  python3 - "$admin_port" <<'EOF' || { kill "$node_pid" 2>/dev/null || true; echo "check failed: live admin scrape invalid" >&2; exit 1; }
import json, re, sys, urllib.request
base = "http://127.0.0.1:" + sys.argv[1]
health = urllib.request.urlopen(base + "/health", timeout=10).read().decode()
assert health == "ok\n", f"bad /health body: {health!r}"
body = urllib.request.urlopen(base + "/metrics", timeout=10).read().decode()
# Every line must be a legal exposition line (format 0.0.4).
type_re = re.compile(r'^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$')
sample_re = re.compile(r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9][-0-9.eE+]*|NaN|[+-]Inf)$')
names = set()
for ln in body.splitlines():
    if not ln:
        continue
    assert type_re.match(ln) or sample_re.match(ln), f"malformed exposition line: {ln!r}"
    if not ln.startswith("#"):
        names.add(ln.split("{")[0].split(" ")[0])
assert any(n.startswith("shoalpp_live_") for n in names), "live gauges missing mid-run"
assert "shoalpp_commit_fast_direct" in names, "commit counters missing from scrape"
# Histogram sanity: cumulative buckets closed by le="+Inf" equal to _count.
buckets, counts = {}, {}
for ln in body.splitlines():
    m = re.match(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)_bucket\{le="([^"]+)"\} (\d+)$', ln)
    if m:
        buckets.setdefault(m.group(1), []).append((m.group(2), int(m.group(3))))
    m = re.match(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)_count (\d+)$', ln)
    if m:
        counts[m.group(1)] = int(m.group(2))
assert buckets, "no histogram series in mid-run scrape"
for name, bs in buckets.items():
    vals = [c for _, c in bs]
    assert vals == sorted(vals), f"{name} buckets are not cumulative"
    assert bs[-1][0] == "+Inf" and bs[-1][1] == counts.get(name), f"{name} not closed by +Inf=_count"
ledger = json.loads(urllib.request.urlopen(base + "/ledger", timeout=10).read().decode())
assert isinstance(ledger["entries"], list) and ledger["recorded"] >= len(ledger["entries"])
print(f"admin scrape: {len(names)} metric families, {len(buckets)} histograms, "
      f"ledger tail {len(ledger['entries'])} of {ledger['recorded']} commits")
EOF
else
  echo "check: python3 not installed, skipping live /metrics scrape validation"
fi
wait "$node_pid" || { echo "check failed: node run failed (see $out/node.out)" >&2; cat "$out/node.out" >&2; exit 1; }
grep -q 'audit: consistent logs, no duplicates' "$out/node.out" \
  || { echo "check failed: node audit line missing" >&2; exit 1; }
if grep -q 'audit: consistent logs, no duplicates; 0 segments' "$out/node.out"; then
  echo "check failed: node committed no segments" >&2; exit 1
fi
grep -Eq 'lanes [1-9][0-9]*,[1-9][0-9]*,[1-9][0-9]*' "$out/node.out" \
  || { echo "check failed: a DAG lane committed no anchors" >&2; exit 1; }
grep -q 'per-commit stage attribution' "$out/node.out" \
  || { echo "check failed: ledger breakdown table missing from node output" >&2; exit 1; }
for f in node.jsonl node.metrics.json; do
  test -s "$out/$f" || { echo "check failed: $f missing or empty" >&2; exit 1; }
done

# Cross-replica trace analysis: join the smoke run's per-replica logs and
# fail on commit-sequence divergence (the analyzer exits 1 on divergence).
./_build/default/tools/trace/shoalpp_trace.exe "$out/node.jsonl" \
  --metrics "$out/node.metrics.json" > "$out/trace_report.txt" \
  || { echo "check failed: trace analyzer reported divergence" >&2; cat "$out/trace_report.txt" >&2; exit 1; }
grep -q 'commit sequence: consistent' "$out/trace_report.txt" \
  || { echo "check failed: analyzer consistency line missing" >&2; exit 1; }
grep -Eq 'propose->order' "$out/trace_report.txt" \
  || { echo "check failed: analyzer produced no stage attribution" >&2; exit 1; }

# Multicore node smoke: the same cluster with each DAG lane on its own
# domain and signature checks on the verify pool (--domains 2). The run
# must pass its own audit (the binary exits non-zero otherwise), report a
# clean pool, and — the determinism claim — the trace analyzer joined over
# the per-lane-domain rings must find zero commit-sequence divergence.
./_build/default/bin/shoalpp_node.exe \
  -n 4 --duration 4000 --load 500 --domains 2 \
  --trace-out "$out/mc.jsonl" > "$out/mc.out" 2>&1 \
  || { echo "check failed: multicore node run failed" >&2; cat "$out/mc.out" >&2; exit 1; }
grep -q '2 domains (per-DAG executors + verify pool)' "$out/mc.out" \
  || { echo "check failed: multicore mode not engaged" >&2; exit 1; }
grep -q 'audit: consistent logs, no duplicates' "$out/mc.out" \
  || { echo "check failed: multicore node audit line missing" >&2; exit 1; }
grep -Eq 'verify pool: [1-9][0-9]* jobs \([0-9]+ stolen, 0 exceptions\)' "$out/mc.out" \
  || { echo "check failed: verify pool idle or raised exceptions" >&2; cat "$out/mc.out" >&2; exit 1; }
./_build/default/tools/trace/shoalpp_trace.exe "$out/mc.jsonl" > "$out/mc_report.txt" \
  || { echo "check failed: multicore commit sequences diverged" >&2; cat "$out/mc_report.txt" >&2; exit 1; }
grep -q 'commit sequence: consistent' "$out/mc_report.txt" \
  || { echo "check failed: multicore analyzer consistency line missing" >&2; exit 1; }

# TCP transport smoke: the same 4-replica cluster over real TCP sockets
# with write coalescing, on a FIXED base port (retrying a few bases, since
# CI machines may hold ports) — the binary exits non-zero on a failed
# audit, and the trace analyzer must find zero commit-sequence divergence,
# i.e. the socket transport changed timing but never content.
tcp_ok=""
for base in 39140 39240 39340 39440 39540; do
  if ./_build/default/bin/shoalpp_node.exe \
      -n 4 --transport tcp --tcp-port "$base" --coalesce-us 500 \
      --duration 4000 --load 300 --no-verify \
      --trace-out "$out/tcp.jsonl" > "$out/tcp.out" 2>&1; then
    tcp_ok=1; break
  elif grep -q 'EADDRINUSE' "$out/tcp.out"; then
    echo "check: tcp base port $base in use, retrying"
  else
    echo "check failed: tcp node run failed" >&2; cat "$out/tcp.out" >&2; exit 1
  fi
done
[ -n "$tcp_ok" ] || { echo "check failed: no free tcp base port" >&2; exit 1; }
grep -q 'audit: consistent logs, no duplicates' "$out/tcp.out" \
  || { echo "check failed: tcp node audit line missing" >&2; exit 1; }
grep -Eq 'tcp: [1-9][0-9]* flushes, [1-9][0-9]* coalesced frames' "$out/tcp.out" \
  || { echo "check failed: tcp coalescing never engaged" >&2; cat "$out/tcp.out" >&2; exit 1; }
./_build/default/tools/trace/shoalpp_trace.exe "$out/tcp.jsonl" > "$out/tcp_report.txt" \
  || { echo "check failed: tcp commit sequences diverged" >&2; cat "$out/tcp_report.txt" >&2; exit 1; }
grep -q 'commit sequence: consistent' "$out/tcp_report.txt" \
  || { echo "check failed: tcp analyzer consistency line missing" >&2; exit 1; }

# Geography smoke: n=10 over TCP with the paper's gcp10 delay matrix
# applied per link (kernel-assigned ports). The run must pass its safety
# audit under realistic heterogeneous latencies; the exit code carries it.
./_build/default/bin/shoalpp_node.exe \
  -n 10 --transport tcp --topology gcp10 --coalesce-us 500 \
  --duration 5000 --load 300 --no-verify > "$out/tcp10.out" 2>&1 \
  || { echo "check failed: n=10 tcp+gcp10 run failed" >&2; cat "$out/tcp10.out" >&2; exit 1; }
grep -q 'audit: consistent logs, no duplicates' "$out/tcp10.out" \
  || { echo "check failed: tcp+gcp10 audit line missing" >&2; exit 1; }

# Bounded-memory smoke: a longer checkpointed run must hold the live heap
# under a fixed ceiling — scraped from /metrics MID-RUN, late in the run,
# when unbounded retention would have accumulated (a checkpointed run
# retains at most two checkpoint windows of store + WAL; BENCH_mem.json
# records the retention curves). The ceiling is ~5x the measured steady
# state, so real regressions trip it while GC noise cannot.
./_build/default/bin/shoalpp_node.exe \
  -n 4 --duration 12000 --load 500 --no-verify --admin-port 0 \
  --checkpoint-interval 12 --metrics-out "$out/mem.metrics.json" \
  > "$out/mem.out" 2>&1 &
mem_pid=$!
mem_port=""
i=0
while [ $i -lt 50 ]; do
  mem_port=$(sed -n 's#^admin: http://127\.0\.0\.1:\([0-9]*\)/metrics.*#\1#p' "$out/mem.out")
  [ -n "$mem_port" ] && break
  i=$((i + 1)); sleep 0.1
done
[ -n "$mem_port" ] || { kill "$mem_pid" 2>/dev/null || true; echo "check failed: mem smoke admin endpoint missing" >&2; exit 1; }
sleep 9
if command -v python3 >/dev/null 2>&1; then
  python3 - "$mem_port" <<'EOF' || { kill "$mem_pid" 2>/dev/null || true; echo "check failed: live heap over ceiling or gauges missing" >&2; exit 1; }
import re, sys, urllib.request
body = urllib.request.urlopen("http://127.0.0.1:%s/metrics" % sys.argv[1], timeout=10).read().decode()
def gauge(name):
    m = re.search(r'^%s (\S+)$' % re.escape(name), body, re.M)
    return float(m.group(1)) if m else None
heap = gauge("shoalpp_live_heap_words")
assert heap is not None, "live heap gauge missing"
CEILING = 64e6  # words; the checkpointed 12s/500tps run steadies near 11M
assert heap < CEILING, f"live heap {heap:.0f} words >= ceiling {CEILING:.0f}"
pruned = gauge("shoalpp_gc_pruned_vertices")
assert pruned and pruned > 0, "checkpoint-anchored pruning never ran"
print(f"mem smoke: live heap {heap/1e6:.1f}M words (< {CEILING/1e6:.0f}M), {pruned:.0f} vertices pruned")
EOF
else
  echo "check: python3 not installed, skipping live heap ceiling"
fi
wait "$mem_pid" || { echo "check failed: mem smoke run failed" >&2; cat "$out/mem.out" >&2; exit 1; }
grep -q 'audit: consistent logs, no duplicates' "$out/mem.out" \
  || { echo "check failed: mem smoke audit line missing" >&2; exit 1; }

# Lag-then-catch-up smoke: kill one replica mid-run, restart it, and
# require that it rejoined from a certified checkpoint (base_seq > 0 — it
# did NOT replay from genesis) with an O(gap) number of sync requests,
# and that the cluster audit still passes (the binary's exit code).
./_build/default/bin/shoalpp_node.exe \
  -n 4 --duration 10000 --load 300 --no-verify \
  --checkpoint-interval 12 --restart 3000,6000 > "$out/catchup.out" 2>&1 \
  || { echo "check failed: restart run failed" >&2; cat "$out/catchup.out" >&2; exit 1; }
grep -q 'audit: consistent logs, no duplicates' "$out/catchup.out" \
  || { echo "check failed: restart audit line missing" >&2; exit 1; }
restart_line=$(grep '^restart: replica' "$out/catchup.out") \
  || { echo "check failed: restart summary line missing" >&2; cat "$out/catchup.out" >&2; exit 1; }
base_seq=$(printf '%s' "$restart_line" | sed -n 's/^restart: replica [0-9]* base_seq \([0-9]*\),.*/\1/p')
reqs=$(printf '%s' "$restart_line" | sed -n 's/.*catch-up \([0-9]*\) sync requests.*/\1/p')
[ -n "$base_seq" ] && [ "$base_seq" -gt 0 ] \
  || { echo "check failed: restarted replica replayed from genesis (base_seq=$base_seq)" >&2; exit 1; }
[ -n "$reqs" ] && [ "$reqs" -ge 3 ] && [ "$reqs" -le 60 ] \
  || { echo "check failed: catch-up sync requests not O(gap) ($reqs)" >&2; exit 1; }
echo "catch-up smoke: $restart_line"

# Node-bench guard: a short re-run of the domains sweep must keep every
# machine-independent behaviour field clean (audit consistent, zero
# duplicate orders, zero pool exceptions), and the committed
# BENCH_node.json must carry the same guarantees plus the recorded >= 1.5x
# ordered-tps speedup at its top domain count. Absolute tx/s are never
# asserted — they are this machine's, not the code's.
BENCH_NODE_OUT="$out/node_bench.json" BENCH_NODE_DURATION_S=2 \
  BENCH_NODE_LOAD=20000 BENCH_NODE_DOMAINS=1,2 \
  timeout 120 ./_build/default/bench/main.exe node >/dev/null \
  || { echo "check failed: node bench did not complete" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$out/node_bench.json" BENCH_node.json <<'EOF' || { echo "check failed: BENCH_node.json malformed or behaviour regressed" >&2; exit 1; }
import json, sys
fresh = json.load(open(sys.argv[1]))
committed = json.load(open(sys.argv[2]))
for which, doc in (("fresh", fresh), ("committed", committed)):
    assert doc["schema"] == "shoalpp-bench-node/1", f"{which}: bad schema"
    assert doc["runs"], f"{which}: no runs"
    for r in doc["runs"]:
        tag = f"{which} domains={r['domains']}"
        assert r["audit_consistent"] is True, f"{tag}: audit failed"
        assert r["duplicate_orders"] == 0, f"{tag}: duplicate orders"
        assert r["pool_work_exceptions"] == 0, f"{tag}: pool exceptions"
        assert r["behaviour_ok"] is True, f"{tag}: behaviour flag"
        assert r["committed"] > 0, f"{tag}: committed nothing"
        assert r["k_dags"] == 3, f"{tag}: unexpected DAG count"
assert [r["domains"] for r in committed["runs"]] == [1, 2, 4], "committed sweep shape changed"
sp = committed["speedup_vs_1"]
assert sp["ratio"] >= 1.5, f"committed speedup {sp['ratio']:.2f}x < 1.5x"
print(f"node bench guard: behaviour clean at domains {[r['domains'] for r in fresh['runs']]}, "
      f"committed speedup {sp['ratio']:.2f}x at {sp['domains']} domains")
EOF
else
  grep -q '"behaviour_ok":true' "$out/node_bench.json" \
    || { echo "check failed: node bench behaviour flag missing" >&2; exit 1; }
fi

# Perf re-run guard: the full sweep (same durations as the committed
# BENCH_perf.json) must finish inside a generous ceiling with all audits
# passing, and the n=50 gcp10 run is held to within 10% of the committed
# baseline on the machine-independent axes — byte-identical behaviour
# (same events fired, same commits) and allocated words per run. Raw
# wall-clock/events-per-second are reported but not asserted: they track
# the CI machine's load as much as the code (the committed code itself
# misses its own committed ev/s numbers on a throttled machine).
BENCH_PERF_OUT="$out/perf.json" \
  timeout 600 ./_build/default/bench/main.exe perf >/dev/null \
  || { echo "check failed: perf sweep did not complete" >&2; exit 1; }
test -s "$out/perf.json" || { echo "check failed: BENCH_perf.json missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$out/perf.json" BENCH_perf.json <<'EOF' || { echo "check failed: BENCH_perf.json malformed or regressed" >&2; exit 1; }
import json, sys
d = json.load(open(sys.argv[1]))
runs = d["runs"]
assert len(runs) == 6, f"expected 6 runs, got {len(runs)}"
for r in runs:
    assert r["audit_ok"] is True, f"audit failed for n={r['n']} {r['topology']}"
    assert r["wall_ms"] > 0 and r["events_fired"] > 0 and r["committed"] > 0
committed = json.load(open(sys.argv[2]))
pick = lambda rs: next(r for r in rs if r["n"] == 50 and r["topology"] == "gcp10")
fresh, base = pick(runs), pick(committed["runs"])
assert fresh["events_fired"] == base["events_fired"], (
    f"n=50 gcp10 behaviour changed: {fresh['events_fired']} events vs "
    f"committed {base['events_fired']}")
assert fresh["committed"] == base["committed"], (
    f"n=50 gcp10 behaviour changed: {fresh['committed']} commits vs "
    f"committed {base['committed']}")
alloc = fresh["allocated_words"] / base["allocated_words"]
assert alloc <= 1.10, (
    f"n=50 gcp10 regressed: {fresh['allocated_words']} allocated words vs "
    f"committed {base['allocated_words']} (ratio {alloc:.2f} > 1.10)")
print(f"perf guard: n=50 gcp10 behaviour identical, {alloc:.2f}x committed allocations, "
      f"{fresh['events_per_sec'] / base['events_per_sec']:.2f}x committed ev/s (informational)")
EOF
else
  grep -q '"audit_ok":true' "$out/perf.json" \
    || { echo "check failed: BENCH_perf.json has no passing audit" >&2; exit 1; }
fi

echo "check: build + tests + docs + observability/scenario + node + live scrape + trace analysis + multicore + tcp + gcp10 shim + node bench + perf smoke OK"
