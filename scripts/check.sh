#!/bin/sh
# CI check: build, run the full test suite, then smoke-test the simulator's
# observability exports end to end. One command, non-zero exit on any failure.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

dune exec bin/shoalpp_sim.exe -- \
  -n 4 --topology clique:4,15 --load 200 --duration 4000 --warmup 500 \
  --trace-out "$out/run.jsonl" \
  --chrome-out "$out/run.trace.json" \
  --metrics-out "$out/run.metrics.json"

# The exports must exist and be non-empty; the JSONL must look like events.
for f in run.jsonl run.trace.json run.metrics.json; do
  test -s "$out/$f" || { echo "check failed: $f missing or empty" >&2; exit 1; }
done
grep -q '"tag":"proposal_created"' "$out/run.jsonl" \
  || { echo "check failed: no proposal events in trace" >&2; exit 1; }
grep -q '"traceEvents"' "$out/run.trace.json" \
  || { echo "check failed: chrome trace malformed" >&2; exit 1; }
grep -q '"commit.fast_direct"' "$out/run.metrics.json" \
  || { echo "check failed: commit-rule counters missing from metrics" >&2; exit 1; }

echo "check: build + tests + observability smoke OK"
